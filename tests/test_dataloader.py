import queue
import threading
import time

import numpy as np
import pytest

from repro.core.lotustrace import (
    InMemoryTraceLog,
    KIND_BATCH_CONSUMED,
    KIND_BATCH_PREPROCESSED,
    KIND_BATCH_WAIT,
    OOO_MARKER_DURATION_NS,
    analyze_trace,
)
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.data.worker import SHUTDOWN_SENTINEL, WorkerFailure, worker_loop
from repro.errors import DataLoaderError, WorkerCrashError
from repro.tensor.collate import default_collate


class ArrayDataset(Dataset):
    def __init__(self, n=24):
        self._n = n

    def __getitem__(self, index):
        return np.array([float(index)])

    def __len__(self):
        return self._n


class FailingDataset(Dataset):
    def __getitem__(self, index):
        if index == 5:
            raise ValueError("bad sample")
        return np.array([float(index)])

    def __len__(self):
        return 8


class TestSingleProcess:
    def test_yields_all_batches_in_order(self):
        loader = DataLoader(ArrayDataset(10), batch_size=4)
        batches = [batch.numpy().ravel().tolist() for batch in loader]
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_drop_last(self):
        loader = DataLoader(ArrayDataset(10), batch_size=4, drop_last=True)
        assert len(list(loader)) == 2
        assert len(loader) == 2

    def test_shuffle_covers_all(self):
        loader = DataLoader(ArrayDataset(12), batch_size=3, shuffle=True, seed=0)
        seen = sorted(
            v for batch in loader for v in batch.numpy().ravel().tolist()
        )
        assert seen == [float(i) for i in range(12)]

    def test_shuffle_seeded(self):
        def epoch(seed):
            loader = DataLoader(ArrayDataset(12), batch_size=3, shuffle=True, seed=seed)
            return [tuple(b.numpy().ravel()) for b in loader]

        assert epoch(5) == epoch(5)
        assert epoch(5) != epoch(6)

    def test_pin_memory(self):
        loader = DataLoader(ArrayDataset(4), batch_size=2, pin_memory=True)
        batch = next(iter(loader))
        assert batch.pinned

    def test_trace_records(self):
        log = InMemoryTraceLog()
        loader = DataLoader(ArrayDataset(8), batch_size=4, log_file=log)
        list(loader)
        kinds = {r.kind for r in log.records()}
        assert KIND_BATCH_PREPROCESSED in kinds
        assert KIND_BATCH_CONSUMED in kinds

    def test_reiterable(self):
        loader = DataLoader(ArrayDataset(6), batch_size=3)
        assert len(list(loader)) == 2
        assert len(list(loader)) == 2

    def test_invalid_params(self):
        with pytest.raises(DataLoaderError):
            DataLoader(ArrayDataset(), num_workers=-1)
        with pytest.raises(DataLoaderError):
            DataLoader(ArrayDataset(), prefetch_factor=0)


class TestMultiWorker:
    def test_yields_all_batches_in_order(self):
        loader = DataLoader(ArrayDataset(20), batch_size=4, num_workers=3)
        batches = [batch.numpy().ravel().tolist() for batch in loader]
        assert batches == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9, 10, 11],
            [12, 13, 14, 15],
            [16, 17, 18, 19],
        ]

    def test_in_order_despite_shuffle(self):
        # Batch *ids* are consumed in order even when contents shuffle.
        log = InMemoryTraceLog()
        loader = DataLoader(
            ArrayDataset(24), batch_size=4, num_workers=4, shuffle=True,
            seed=2, log_file=log,
        )
        list(loader)
        consumed = [
            r.batch_id for r in log.records() if r.kind == KIND_BATCH_CONSUMED
        ]
        assert consumed == sorted(consumed)

    def test_more_workers_than_batches(self):
        loader = DataLoader(ArrayDataset(4), batch_size=2, num_workers=6)
        assert len(list(loader)) == 2

    def test_single_worker(self):
        loader = DataLoader(ArrayDataset(9), batch_size=2, num_workers=1)
        assert len(list(loader)) == 5

    def test_wait_records_per_batch(self):
        log = InMemoryTraceLog()
        loader = DataLoader(
            ArrayDataset(16), batch_size=4, num_workers=2, log_file=log
        )
        list(loader)
        waits = [r for r in log.records() if r.kind == KIND_BATCH_WAIT]
        assert len(waits) == 4
        assert {r.batch_id for r in waits} == {0, 1, 2, 3}

    def test_ooo_marker_duration(self):
        log = InMemoryTraceLog()
        loader = DataLoader(
            ArrayDataset(32), batch_size=2, num_workers=4, log_file=log
        )
        list(loader)
        ooo = [r for r in log.records() if r.kind == KIND_BATCH_WAIT and r.out_of_order]
        for record in ooo:
            assert record.duration_ns == OOO_MARKER_DURATION_NS

    def test_preprocessed_records_carry_worker_ids(self):
        log = InMemoryTraceLog()
        loader = DataLoader(
            ArrayDataset(16), batch_size=4, num_workers=2, log_file=log
        )
        list(loader)
        fetches = [r for r in log.records() if r.kind == KIND_BATCH_PREPROCESSED]
        assert {r.worker_id for r in fetches} <= {0, 1}
        assert len(fetches) == 4

    def test_worker_exception_propagates(self):
        loader = DataLoader(
            FailingDataset(), batch_size=4, num_workers=2, worker_timeout_s=10
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            list(loader)
        assert "bad sample" in str(excinfo.value)

    def test_close_midway(self):
        loader = DataLoader(ArrayDataset(40), batch_size=2, num_workers=2)
        iterator = iter(loader)
        next(iterator)
        iterator.close()  # must not hang or raise

    def test_epoch_complete_after_ooo(self):
        # Every batch is eventually yielded exactly once.
        loader = DataLoader(ArrayDataset(30), batch_size=3, num_workers=5, shuffle=True, seed=9)
        values = sorted(
            v for batch in iter(loader) for v in batch.numpy().ravel().tolist()
        )
        assert values == [float(i) for i in range(30)]


class TestWorkerLoop:
    def test_worker_loop_processes_and_stops(self):
        index_q, data_q = queue.Queue(), queue.Queue()
        index_q.put((0, [1, 2]))
        index_q.put(SHUTDOWN_SENTINEL)
        worker_loop(0, ArrayDataset(), index_q, data_q, default_collate)
        batch_id, data = data_q.get_nowait()
        assert batch_id == 0
        assert data.numpy().ravel().tolist() == [1.0, 2.0]

    def test_worker_ships_failure_and_continues(self):
        index_q, data_q = queue.Queue(), queue.Queue()
        index_q.put((0, [5]))
        index_q.put((1, [0]))
        index_q.put(SHUTDOWN_SENTINEL)
        worker_loop(1, FailingDataset(), index_q, data_q, default_collate)
        _, failure = data_q.get_nowait()
        assert isinstance(failure, WorkerFailure)
        assert failure.exc_type == "ValueError"
        batch_id, data = data_q.get_nowait()
        assert batch_id == 1

    def test_worker_writes_t1_records(self):
        log = InMemoryTraceLog()
        index_q, data_q = queue.Queue(), queue.Queue()
        index_q.put((7, [0, 1]))
        index_q.put(SHUTDOWN_SENTINEL)
        worker_loop(2, ArrayDataset(), index_q, data_q, default_collate, log_target=log)
        records = log.records()
        assert len(records) == 1
        assert records[0].kind == KIND_BATCH_PREPROCESSED
        assert records[0].batch_id == 7
        assert records[0].worker_id == 2


class SlowDataset(Dataset):
    """Items that take longer than the loader's worker timeout."""

    def __init__(self, delay_s=0.6, n=4):
        self.delay_s = delay_s
        self._n = n

    def __getitem__(self, index):
        time.sleep(self.delay_s)
        return np.array([float(index)])

    def __len__(self):
        return self._n


class TestWorkerTimeout:
    def test_timeout_raises_with_configured_deadline(self):
        loader = DataLoader(
            SlowDataset(delay_s=1.0), batch_size=2, num_workers=1,
            worker_timeout_s=0.2,
        )
        with pytest.raises(DataLoaderError) as excinfo:
            list(loader)
        assert "timed out" in str(excinfo.value)

    def test_no_timeout_when_fast_enough(self):
        loader = DataLoader(
            SlowDataset(delay_s=0.01), batch_size=2, num_workers=1,
            worker_timeout_s=5.0,
        )
        assert len(list(loader)) == 2
