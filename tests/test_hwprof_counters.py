import pytest

from repro.hwprof.counters import COUNTER_NAMES, CounterSet


class TestCounterSet:
    def test_add_from_dict(self):
        counters = CounterSet()
        counters.add({"cpu_time_ns": 100.0, "clockticks": 320.0})
        assert counters.cpu_time_ns == 100.0
        assert counters.clockticks == 320.0

    def test_add_accumulates(self):
        counters = CounterSet()
        counters.add({"cpu_time_ns": 1.0})
        counters.add({"cpu_time_ns": 2.0})
        assert counters.cpu_time_ns == 3.0

    def test_merge(self):
        a = CounterSet(cpu_time_ns=1.0, l1_misses=5.0)
        b = CounterSet(cpu_time_ns=2.0, l1_misses=1.0)
        a.merge(b)
        assert a.cpu_time_ns == 3.0
        assert a.l1_misses == 6.0

    def test_scaled(self):
        counters = CounterSet(cpu_time_ns=10.0, clockticks=32.0)
        half = counters.scaled(0.5)
        assert half.cpu_time_ns == 5.0
        assert half.clockticks == 16.0
        assert counters.cpu_time_ns == 10.0  # original untouched

    def test_scaled_weights_sum_to_whole(self):
        counters = CounterSet(cpu_time_ns=9.0)
        parts = [counters.scaled(w) for w in (0.5, 0.3, 0.2)]
        assert sum(p.cpu_time_ns for p in parts) == pytest.approx(9.0)

    def test_derived_metrics(self):
        counters = CounterSet(
            clockticks=1000.0,
            instructions_retired=1500.0,
            uops_delivered=1200.0,
            front_end_bound_slots=150.0,
            back_end_bound_slots=300.0,
            dram_bound_stalls=100.0,
        )
        assert counters.ipc == pytest.approx(1.5)
        assert counters.front_end_bound_pct == pytest.approx(15.0)
        assert counters.back_end_bound_pct == pytest.approx(30.0)
        assert counters.dram_bound_pct == pytest.approx(10.0)
        assert counters.uops_per_clocktick == pytest.approx(1.2)

    def test_derived_metrics_zero_safe(self):
        counters = CounterSet()
        assert counters.ipc == 0.0
        assert counters.front_end_bound_pct == 0.0
        assert counters.uops_per_clocktick == 0.0

    def test_as_dict_covers_all_names(self):
        assert set(CounterSet().as_dict()) == set(COUNTER_NAMES)
