import numpy as np
import pytest

from repro.data.dataset import Dataset, IterableDataset, TensorDataset
from repro.data.fetcher import (
    _IterableDatasetFetcher,
    _MapDatasetFetcher,
    create_fetcher,
)
from repro.errors import DataLoaderError
from repro.tensor.collate import default_collate


class SquareDataset(Dataset):
    def __getitem__(self, index):
        return np.array([float(index**2)])

    def __len__(self):
        return 100


class CountStream(IterableDataset):
    def __init__(self, n):
        self.n = n

    def __iter__(self):
        return iter(np.array([float(i)]) for i in range(self.n))


class TestMapFetcher:
    def test_fetch_collates(self):
        fetcher = _MapDatasetFetcher(SquareDataset(), default_collate)
        batch = fetcher.fetch([1, 2, 3])
        assert batch.shape == (3, 1)
        assert batch.numpy().ravel().tolist() == [1.0, 4.0, 9.0]

    def test_fetch_respects_index_order(self):
        fetcher = _MapDatasetFetcher(SquareDataset(), default_collate)
        batch = fetcher.fetch([3, 1])
        assert batch.numpy().ravel().tolist() == [9.0, 1.0]

    def test_custom_collate(self):
        fetcher = _MapDatasetFetcher(SquareDataset(), lambda samples: len(samples))
        assert fetcher.fetch([0, 1, 2, 3]) == 4


class TestIterableFetcher:
    def test_sequential_pulls(self):
        fetcher = _IterableDatasetFetcher(CountStream(5), default_collate)
        first = fetcher.fetch([0, 0])  # indices ignored, only count matters
        second = fetcher.fetch([0, 0])
        assert first.numpy().ravel().tolist() == [0.0, 1.0]
        assert second.numpy().ravel().tolist() == [2.0, 3.0]

    def test_partial_final_batch(self):
        fetcher = _IterableDatasetFetcher(CountStream(3), default_collate)
        fetcher.fetch([0, 0])
        final = fetcher.fetch([0, 0])
        assert final.shape == (1, 1)

    def test_exhausted_raises_stopiteration(self):
        fetcher = _IterableDatasetFetcher(CountStream(1), default_collate)
        fetcher.fetch([0])
        with pytest.raises(StopIteration):
            fetcher.fetch([0])


class TestCreateFetcher:
    def test_map_style(self):
        assert isinstance(
            create_fetcher(SquareDataset(), default_collate), _MapDatasetFetcher
        )

    def test_iterable_style(self):
        assert isinstance(
            create_fetcher(CountStream(3), default_collate), _IterableDatasetFetcher
        )

    def test_tensor_dataset_is_map_style(self):
        ds = TensorDataset([1, 2], [3, 4])
        assert isinstance(create_fetcher(ds, default_collate), _MapDatasetFetcher)

    def test_invalid_dataset(self):
        with pytest.raises(DataLoaderError):
            create_fetcher(object(), default_collate)


class TestTensorDataset:
    def test_columns(self):
        ds = TensorDataset([1, 2, 3], ["a", "b", "c"])
        assert ds[1] == (2, "b")
        assert len(ds) == 3

    def test_unequal_lengths(self):
        with pytest.raises(DataLoaderError):
            TensorDataset([1, 2], [3])

    def test_no_columns(self):
        with pytest.raises(DataLoaderError):
            TensorDataset()
