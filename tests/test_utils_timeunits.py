import pytest

from repro.utils.timeunits import (
    format_ns,
    ms_to_ns,
    ns_to_ms,
    ns_to_s,
    ns_to_us,
    s_to_ns,
    us_to_ns,
)


class TestConversions:
    def test_roundtrip_ms(self):
        assert ns_to_ms(ms_to_ns(12.5)) == pytest.approx(12.5)

    def test_roundtrip_us(self):
        assert ns_to_us(us_to_ns(0.75)) == pytest.approx(0.75)

    def test_roundtrip_s(self):
        assert ns_to_s(s_to_ns(3.25)) == pytest.approx(3.25)

    def test_integer_results(self):
        assert isinstance(ms_to_ns(1.5), int)
        assert isinstance(us_to_ns(2), int)
        assert isinstance(s_to_ns(1), int)

    def test_rounding(self):
        assert us_to_ns(0.0006) == 1  # rounds rather than truncates


class TestFormatNs:
    def test_nanoseconds(self):
        assert format_ns(999) == "999ns"

    def test_microseconds(self):
        assert format_ns(1_500) == "1.50us"

    def test_milliseconds(self):
        assert format_ns(2_340_000) == "2.34ms"

    def test_seconds(self):
        assert format_ns(1_500_000_000) == "1.50s"

    def test_negative(self):
        assert format_ns(-2_000_000) == "-2.00ms"
