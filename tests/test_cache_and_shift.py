"""Decode caching, offline materialization, and the bottleneck-shift
extension experiment (Takeaway 2 performed, not just observed)."""

import numpy as np
import pytest

from repro.data.cache import CachingLoader, DecodedArrayDataset, materialize_decoded
from repro.data.dataset import BlobImageDataset
from repro.errors import DataLoaderError
from repro.experiments.ext_bottleneck_shift import (
    format_bottleneck_shift,
    run_bottleneck_shift,
)
from repro.imaging.image import Image


class TestCachingLoader:
    def test_hit_after_miss(self, sjpg_blob):
        cache = CachingLoader()
        first = cache(sjpg_blob)
        second = cache(sjpg_blob)
        assert first is second
        assert cache.misses == 1 and cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_distinct_sources_distinct_entries(self, small_blobs):
        cache = CachingLoader()
        a = cache(small_blobs[0])
        b = cache(small_blobs[1])
        assert a is not b
        assert cache.misses == 2

    def test_lru_eviction(self, small_blobs):
        cache = CachingLoader(capacity=2)
        cache(small_blobs[0])
        cache(small_blobs[1])
        cache(small_blobs[2])  # evicts blob 0
        cache(small_blobs[0])  # miss again
        assert cache.misses == 4

    def test_lru_recency(self, small_blobs):
        cache = CachingLoader(capacity=2)
        cache(small_blobs[0])
        cache(small_blobs[1])
        cache(small_blobs[0])  # refresh 0
        cache(small_blobs[2])  # evicts 1
        cache(small_blobs[0])  # still cached
        assert cache.hits == 2

    def test_clear(self, sjpg_blob):
        cache = CachingLoader()
        cache(sjpg_blob)
        cache.clear()
        cache(sjpg_blob)
        assert cache.misses == 1 and cache.hits == 0

    def test_invalid_capacity(self):
        with pytest.raises(DataLoaderError):
            CachingLoader(capacity=0)

    def test_keys_are_content_addressed(self, small_blobs):
        """Regression: ``hash(source)`` keys can collide (and str hashes
        are randomized per process), silently serving the wrong decoded
        image. Blob keys must derive from the content digest, and equal
        content must hit regardless of object identity."""
        key_a = CachingLoader.cache_key(small_blobs[0])
        key_b = CachingLoader.cache_key(small_blobs[1])
        assert key_a != key_b
        assert key_a[0] == "blob" and isinstance(key_a[1], bytes)
        # A copy with different identity but equal bytes is the same entry.
        assert CachingLoader.cache_key(bytes(bytearray(small_blobs[0]))) == key_a
        cache = CachingLoader()
        decoded = {}
        for blob in small_blobs[:2]:
            decoded[CachingLoader.cache_key(blob)] = cache(blob)
        for blob in small_blobs[:2]:  # hits must return the matching image
            assert cache(blob) is decoded[CachingLoader.cache_key(blob)]
        assert cache.misses == 2 and cache.hits == 2

    def test_path_and_blob_keys_disjoint(self, tmp_path):
        """A path string and a blob with the same bytes never collide."""
        name = str(tmp_path / "img.sjpg")
        assert CachingLoader.cache_key(name) != CachingLoader.cache_key(
            name.encode("utf-8")
        )

    def test_as_dataset_loader(self, small_blobs):
        cache = CachingLoader()
        dataset = BlobImageDataset(small_blobs, loader=cache)
        for index in range(len(dataset)):
            dataset[index]
        for index in range(len(dataset)):
            dataset[index]
        assert cache.hit_rate == pytest.approx(0.5)


class TestOfflineMaterialization:
    def test_materialize_shapes(self, small_blobs):
        arrays = materialize_decoded(small_blobs[:3])
        assert len(arrays) == 3
        assert all(a.ndim == 3 and a.dtype == np.uint8 for a in arrays)

    def test_decoded_dataset_serves_images(self, small_blobs):
        arrays = materialize_decoded(small_blobs[:4])
        dataset = DecodedArrayDataset(arrays, labels=[0, 1, 2, 3])
        image, label = dataset[2]
        assert isinstance(image, Image)
        assert label == 2
        assert np.array_equal(image.to_array(), arrays[2])

    def test_loader_op_near_free(self, small_blobs):
        from repro.core.lotustrace import InMemoryTraceLog

        arrays = materialize_decoded(small_blobs[:4])
        log = InMemoryTraceLog()
        dataset = DecodedArrayDataset(arrays, log_file=log)
        for index in range(4):
            dataset[index]
        loader_times = [r.duration_ns for r in log.records() if r.name == "Loader"]
        assert len(loader_times) == 4
        assert max(loader_times) < 5_000_000  # well under one decode


class TestBottleneckShift:
    @pytest.fixture(scope="class")
    def result(self):
        # 64 images / batch 4 -> 15 steady-state waits, so the
        # frac_waits_over_gpu_step statistic is quantized at ~0.07 rather
        # than 0.125 and one noisy wait cannot flip the bound verdict.
        return run_bottleneck_shift(images=64, seed=1)

    def test_online_preprocessing_bound(self, result):
        assert result.variants["online"].preprocessing_bound

    def test_offline_gpu_bound(self, result):
        assert not result.variants["offline"].preprocessing_bound

    def test_cached_gpu_bound(self, result):
        assert not result.variants["cached"].preprocessing_bound

    def test_speedup(self, result):
        assert result.speedup() > 1.5

    def test_loader_cpu_collapses(self, result):
        assert (
            result.variants["offline"].loader_cpu_ms
            < 0.1 * result.variants["online"].loader_cpu_ms
        )

    def test_cache_warm(self, result):
        assert result.cache_hit_rate >= 0.5

    def test_formatting(self, result):
        text = format_bottleneck_shift(result)
        assert "speedup" in text and "gpu" in text
