import numpy as np
import pytest

from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.errors import ReproError
from repro.runtime.device import make_gpus
from repro.runtime.model import (
    GeneralizedRCNNLike,
    ModelProfile,
    ResNet18Like,
    UNet3DLike,
)
from repro.runtime.trainer import Trainer, _batch_size_of
from repro.tensor import Tensor


class TinyDataset(Dataset):
    def __init__(self, n=12):
        self._n = n

    def __getitem__(self, index):
        return np.array([float(index)])

    def __len__(self):
        return self._n


class TestModelProfile:
    def test_affine_step_time(self):
        model = ModelProfile("m", base_s=0.1, per_sample_s=0.01)
        assert model.step_time_s(10) == pytest.approx(0.2)

    def test_zero_samples_zero_time(self):
        assert ModelProfile("m", 0.1, 0.01).step_time_s(0) == 0.0

    def test_negative_samples(self):
        with pytest.raises(ReproError):
            ModelProfile("m", 0.1, 0.01).step_time_s(-1)

    def test_negative_times(self):
        with pytest.raises(ReproError):
            ModelProfile("m", -0.1, 0.01)

    def test_presets_ordering(self):
        # IS/OD models dominate their small batches; IC model is light.
        assert UNet3DLike().step_time_s(2) > GeneralizedRCNNLike().step_time_s(2)
        assert GeneralizedRCNNLike().step_time_s(2) > ResNet18Like().step_time_s(2)

    def test_scale_parameter(self):
        assert UNet3DLike(2.0).step_time_s(2) == pytest.approx(
            2 * UNet3DLike(1.0).step_time_s(2)
        )


class TestBatchSizeOf:
    def test_tensor(self):
        assert _batch_size_of(Tensor(np.zeros((5, 3)))) == 5

    def test_tuple(self):
        assert _batch_size_of((Tensor(np.zeros((4, 2))), [1, 2, 3, 4])) == 4

    def test_dict(self):
        assert _batch_size_of({"x": Tensor(np.zeros((7,)))}) == 7

    def test_unknown_raises(self):
        with pytest.raises(ReproError):
            _batch_size_of(object())


class TestTrainer:
    def test_runs_all_batches(self):
        loader = DataLoader(TinyDataset(12), batch_size=4)
        trainer = Trainer(make_gpus(2), ResNet18Like(0.1))
        report = trainer.train_epoch(loader)
        assert report.n_batches == 3
        assert len(report.gpu_step_times_s) == 3
        assert report.epoch_time_s > 0

    def test_max_batches_truncation(self):
        loader = DataLoader(TinyDataset(12), batch_size=2, num_workers=1)
        trainer = Trainer(make_gpus(1), ResNet18Like(0.1))
        report = trainer.train_epoch(loader, max_batches=2)
        assert report.n_batches == 2

    def test_split_sizes_balanced(self):
        trainer = Trainer(make_gpus(3), ResNet18Like())
        assert trainer._split_sizes(10) == [4, 3, 3]
        assert trainer._split_sizes(2) == [1, 1, 0]

    def test_more_gpus_smaller_step(self):
        model = UNet3DLike(0.3)
        loader1 = DataLoader(TinyDataset(8), batch_size=4)
        loader2 = DataLoader(TinyDataset(8), batch_size=4)
        step1 = Trainer(make_gpus(1), model).train_epoch(loader1).mean_gpu_step_s
        step2 = Trainer(make_gpus(4), model).train_epoch(loader2).mean_gpu_step_s
        assert step2 < step1

    def test_requires_gpu(self):
        with pytest.raises(ReproError):
            Trainer([], ResNet18Like())

    def test_utilization_reported(self):
        loader = DataLoader(TinyDataset(4), batch_size=2)
        report = Trainer(make_gpus(2), UNet3DLike(0.2)).train_epoch(loader)
        assert len(report.gpu_utilization) == 2
        assert all(0.0 <= u <= 1.0 for u in report.gpu_utilization)


class TestFit:
    def test_multi_epoch_reports(self):
        loader = DataLoader(TinyDataset(8), batch_size=4)
        reports = Trainer(make_gpus(1), ResNet18Like(0.1)).fit(loader, epochs=3)
        assert len(reports) == 3
        assert all(r.n_batches == 2 for r in reports)

    def test_fit_with_persistent_workers(self):
        loader = DataLoader(
            TinyDataset(8), batch_size=4, num_workers=2, persistent_workers=True
        )
        reports = Trainer(make_gpus(1), ResNet18Like(0.1)).fit(loader, epochs=2)
        loader.close()
        assert [r.n_batches for r in reports] == [2, 2]

    def test_invalid_epochs(self):
        loader = DataLoader(TinyDataset(4), batch_size=2)
        with pytest.raises(ReproError):
            Trainer(make_gpus(1), ResNet18Like()).fit(loader, epochs=0)
