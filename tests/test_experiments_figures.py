"""Shape assertions for the reproduced figures (2-6)."""

import pytest

from repro.experiments.fig2_traces import (
    GPU_BOUND,
    PREPROCESSING_BOUND,
    format_fig2,
    run_fig2,
)
from repro.experiments.fig3_out_of_order import format_fig3, run_fig3
from repro.experiments.fig4_variance import format_fig4, run_fig4
from repro.experiments.fig5_wait_delay import format_fig5, run_fig5
from repro.experiments.fig6_hw_analysis import format_fig6, run_fig6
from repro.workloads import SMOKE


@pytest.fixture(scope="module")
def fig2():
    # Larger model scale widens the regime margins against single-core
    # timing jitter: IS/OD GPU steps tower over any inflated waits. One
    # worker keeps IC preprocessing-bound at test scale now that the
    # channels-first resample sped up the per-sample substrate — two
    # workers at SMOKE scale leave the regime balanced on the threshold.
    return run_fig2(
        profile=SMOKE.scaled(model_scale=1.2), num_workers=1, n_gpus=1, seed=0
    )


class TestFig2:
    def test_ic_preprocessing_bound(self, fig2):
        assert fig2.panels["IC"].regime == PREPROCESSING_BOUND

    def test_is_od_gpu_bound(self, fig2):
        assert fig2.panels["IS"].regime == GPU_BOUND
        assert fig2.panels["OD"].regime == GPU_BOUND

    def test_gpu_bound_pipelines_show_delay(self, fig2):
        """Offline-prepped pipelines queue batches behind the GPU: some
        batch sits ready for the order of a GPU step (the paper's delays
        far exceed it because its queues are much deeper)."""
        for name in ("IS", "OD"):
            panel = fig2.panels[name]
            assert panel.max_delay_ms > 0.5 * panel.gpu_step_ms

    def test_ic_waits_exceed_gpu_step(self, fig2):
        panel = fig2.panels["IC"]
        assert panel.median_wait_ms > panel.gpu_step_ms

    def test_chrome_traces_emitted(self, fig2):
        for panel in fig2.panels.values():
            events = panel.chrome_trace["traceEvents"]
            assert events
            names = {e["name"] for e in events}
            assert any(name.startswith("SBatchPreprocessed") for name in names)

    def test_coarse_traces_have_no_op_spans(self, fig2):
        for panel in fig2.panels.values():
            names = {e["name"] for e in panel.chrome_trace["traceEvents"]}
            assert not any(name == "SLoader" for name in names)

    def test_formatting(self, fig2):
        text = format_fig2(fig2)
        assert "gpu-bound" in text and "preprocessing-bound" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def fig3(self):
        return run_fig3()

    def test_batch1_ready_before_requested(self, fig3):
        assert fig3.batch1_ready_before_requested

    def test_out_of_order_event_detected(self, fig3):
        assert fig3.out_of_order_count >= 1

    def test_main_waited_for_heavy_batch(self, fig3):
        assert fig3.wait_batch0_ms > 1.0

    def test_ready_batch_accrued_delay(self, fig3):
        assert fig3.delay_batch1_ms > 0.5

    def test_consumption_stays_in_order(self, fig3):
        assert fig3.consumption_order == [0, 1]

    def test_formatting(self, fig3):
        assert "out-of-order" in format_fig3(fig3).lower()


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(
        profile=SMOKE, batch_sizes=(2, 8), gpu_counts=(1, 2),
        images_per_config=192, seed=4,
    )


class TestFig4:
    def test_all_configs_present(self, fig4):
        assert set(fig4.summaries) == {(2, 1), (8, 1), (2, 2), (8, 2)}

    def test_meaningful_variance(self, fig4):
        """Paper: std is 5.48-10.73% of the mean; ours is at least a few
        percent in every configuration."""
        low, high = fig4.std_pct_range()
        assert low > 2.0

    def test_iqr_grows_with_batch_size(self, fig4):
        """Paper: IQR grows up to 6.9x from the smallest to largest batch.

        Individual per-config IQR estimates come from few large batches;
        assert on the better-sampled of the two GPU configurations (the
        bench does the same at larger scale).
        """
        assert max(fig4.iqr_ratio(1), fig4.iqr_ratio(2)) > 1.2

    def test_mean_grows_with_batch_size(self, fig4):
        assert fig4.summaries[(8, 1)].mean > fig4.summaries[(2, 1)].mean

    def test_formatting(self, fig4):
        assert "IQR" in format_fig4(fig4)


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self):
        return run_fig5(
            profile=SMOKE, batch_size=8, configs=((1, 1), (3, 3)),
            images=48, seed=5,
        )

    def test_waits_exceed_threshold_somewhere(self, fig5):
        """Paper 5a: 30.8-100% of batches wait beyond the GPU-step-derived
        threshold — the GPU stalls on preprocessing."""
        assert max(fig5.wait_fractions().values()) > 0.3

    def test_multi_worker_delays_appear(self, fig5):
        """Paper 5b: with >1 dataloader, a meaningful fraction of batches
        accrue delay beyond the threshold (OOO + pinning)."""
        assert fig5.delay_fractions()[(3, 3)] >= fig5.delay_fractions()[(1, 1)]

    def test_rows_complete(self, fig5):
        for row in fig5.rows.values():
            assert row.n_batches > 0
            assert 0.0 <= row.frac_waits_over <= 1.0
            assert 0.0 <= row.frac_delays_over <= 1.0

    def test_formatting(self, fig5):
        assert "threshold" in format_fig5(fig5)


@pytest.fixture(scope="module")
def fig6():
    # Worker sweep up to 8: the contention-driven counter trends (f-h)
    # need a wide concurrency contrast to rise above function-mix noise.
    # 96 images (12 batches) keep all 8 workers concurrently busy long
    # enough for the sampled active-thread counts to reflect the sweep —
    # with the vectorized decoder, shorter epochs under-overlap.
    return run_fig6(
        profile=SMOKE, worker_counts=(1, 2, 8), batch_size=8, n_gpus=2,
        images=96, mapping_runs=6, seed=6,
    )


class TestFig6:
    def test_e2e_drops_with_workers(self, fig6):
        """Panel (a): E2E time drops substantially (paper: ~50%)."""
        series = fig6.e2e_series()
        assert series[-1] < series[0] * 0.7

    def test_cpu_time_rises_with_workers(self, fig6):
        """Panels (b, e): total CPU time rises even as E2E falls."""
        series = fig6.total_cpu_series()
        assert series[-1] > series[0]

    def test_mapping_filters_profile(self, fig6):
        """Panels (c, d): the mapping shrinks the whole-program profile."""
        for config in fig6.configs.values():
            assert 0 < config.filtered_function_count < config.profile_function_count

    def test_uop_supply_falls(self, fig6):
        """Panel (f)."""
        series = fig6.uops_per_clock_series("Loader")
        assert series[-1] < series[0]

    def test_front_end_bound_rises(self, fig6):
        """Panel (g)."""
        series = fig6.front_end_bound_series("Loader")
        assert series[-1] > series[0]

    def test_dram_bound_falls(self, fig6):
        """Panel (h)."""
        series = fig6.dram_bound_series("Loader")
        assert series[-1] < series[0]

    def test_counters_for_all_mapped_ops(self, fig6):
        for config in fig6.configs.values():
            assert set(config.op_counters) == set(fig6.mapping.operations())

    def test_formatting(self, fig6):
        text = format_fig6(fig6)
        assert "E2E" in text and "DRAM" in text
