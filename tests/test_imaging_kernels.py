import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging import kernels


class TestMemoryKernels:
    def test_memcpy_copies(self):
        src = np.arange(12).reshape(3, 4)
        dst = kernels.memcpy_copy(src)
        assert np.array_equal(dst, src)
        dst[0, 0] = 99
        assert src[0, 0] == 0

    def test_memset_zero(self):
        out = kernels.memset_zero((4, 5), dtype=np.float32)
        assert out.shape == (4, 5)
        assert out.dtype == np.float32
        assert (out == 0).all()

    def test_calloc(self):
        out = kernels.libc_calloc((2, 3))
        assert (out == 0).all()

    def test_memmove_gather(self):
        array = np.arange(20).reshape(4, 5)
        gathered = kernels.memmove_gather(array, np.array([2, 0]))
        assert np.array_equal(gathered, array[[2, 0]])

    def test_pillow_copy(self):
        src = np.ones((2, 2), dtype=np.uint8)
        assert np.array_equal(kernels.pillow_copy(src), src)


class TestUnpack:
    def test_interleaves_planes(self):
        r = np.full((2, 2), 1, dtype=np.uint8)
        g = np.full((2, 2), 2, dtype=np.uint8)
        b = np.full((2, 2), 3, dtype=np.uint8)
        out = kernels.imaging_unpack_rgb((r, g, b))
        assert out.shape == (2, 2, 3)
        assert (out[..., 0] == 1).all()
        assert (out[..., 2] == 3).all()

    def test_shape_mismatch_raises(self):
        r = np.zeros((2, 2), dtype=np.uint8)
        g = np.zeros((2, 3), dtype=np.uint8)
        with pytest.raises(ImageError):
            kernels.imaging_unpack_rgb((r, g, r))


class TestResample:
    def test_precompute_coeffs_normalized(self):
        bounds, weights = kernels.precompute_coeffs(100, 40)
        assert len(bounds) == 40
        assert weights.shape[0] == 40
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_precompute_identity_size(self):
        bounds, weights = kernels.precompute_coeffs(10, 10)
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_precompute_invalid(self):
        with pytest.raises(ImageError):
            kernels.precompute_coeffs(0, 10)

    def test_horizontal_resample_constant_field(self):
        array = np.full((6, 20), 50.0)
        bounds, weights = kernels.precompute_coeffs(20, 7)
        out = kernels.imaging_resample_horizontal(array, bounds, weights)
        assert out.shape == (6, 7)
        assert np.allclose(out, 50.0)

    def test_vertical_resample_constant_field(self):
        array = np.full((20, 6, 3), 77.0)
        bounds, weights = kernels.precompute_coeffs(20, 9)
        out = kernels.imaging_resample_vertical(array, bounds, weights)
        assert out.shape == (9, 6, 3)
        assert np.allclose(out, 77.0)

    def test_downsample_gradient_monotone(self):
        gradient = np.tile(np.arange(64, dtype=np.float64), (4, 1))
        bounds, weights = kernels.precompute_coeffs(64, 8)
        out = kernels.imaging_resample_horizontal(gradient, bounds, weights)
        row = out[0]
        assert all(row[i] < row[i + 1] for i in range(len(row) - 1))


class TestCropFlip:
    def test_crop_copy_semantics(self):
        array = np.arange(36).reshape(6, 6)
        region = kernels.imaging_crop(array, 1, 2, 3, 4)
        assert region.shape == (3, 4)
        region[0, 0] = -1
        assert array[1, 2] != -1

    def test_crop_bounds_check(self):
        with pytest.raises(ImageError):
            kernels.imaging_crop(np.zeros((4, 4)), 2, 2, 4, 4)

    def test_flip_contiguous(self):
        out = kernels.imaging_flip_left_right(np.arange(8).reshape(2, 4))
        assert out.flags["C_CONTIGUOUS"]
        assert out[0, 0] == 3
