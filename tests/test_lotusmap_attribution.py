import pytest

from repro.core.lotusmap.attribution import (
    attribute_counters,
    attribute_counters_equal_split,
)
from repro.core.lotusmap.mapping import Mapping
from repro.errors import MappingError
from repro.hwprof.profile import FunctionProfile, HardwareProfile


def make_profile(rows):
    """rows: {function: (library, cpu_time_ns)}"""
    profile = HardwareProfile("intel", 1000)
    for function, (library, cpu) in rows.items():
        row = FunctionProfile(function=function, library=library, samples=1)
        row.counters.add({"cpu_time_ns": cpu, "clockticks": cpu * 3.2})
        profile._rows[(function, library)] = row
    return profile


def make_mapping():
    mapping = Mapping("intel")
    mapping.add("Loader", [("decode_mcu", "libjpeg"), ("memmove", "libc")])
    mapping.add("RandomResizedCrop", [("resample", "pillow"), ("memmove", "libc")])
    mapping.add("ToTensor", [("copy_", "libtensor"), ("memmove", "libc")])
    return mapping


class TestTimeWeightedAttribution:
    def test_exclusive_function_fully_attributed(self):
        profile = make_profile({"decode_mcu": ("libjpeg", 1000.0)})
        result = attribute_counters(
            profile, make_mapping(), {"Loader": 5.0, "RandomResizedCrop": 2.0}
        )
        assert result["Loader"].cpu_time_ns == pytest.approx(1000.0)
        assert result["RandomResizedCrop"].cpu_time_ns == 0.0

    def test_shared_function_split_by_elapsed_time(self):
        """The paper's example: weight Loader by L / (L + RRP + TT)."""
        profile = make_profile({"memmove": ("libc", 900.0)})
        elapsed = {"Loader": 6.0, "RandomResizedCrop": 2.0, "ToTensor": 1.0}
        result = attribute_counters(profile, make_mapping(), elapsed)
        assert result["Loader"].cpu_time_ns == pytest.approx(900.0 * 6 / 9)
        assert result["RandomResizedCrop"].cpu_time_ns == pytest.approx(900.0 * 2 / 9)
        assert result["ToTensor"].cpu_time_ns == pytest.approx(900.0 * 1 / 9)

    def test_split_conserves_total(self):
        profile = make_profile(
            {"memmove": ("libc", 900.0), "decode_mcu": ("libjpeg", 500.0)}
        )
        elapsed = {"Loader": 3.0, "RandomResizedCrop": 1.0, "ToTensor": 1.0}
        result = attribute_counters(profile, make_mapping(), elapsed)
        total = sum(counters.cpu_time_ns for counters in result.values())
        assert total == pytest.approx(1400.0)

    def test_unmapped_functions_ignored(self):
        profile = make_profile({"gc_collect": ("libpython", 5000.0)})
        result = attribute_counters(profile, make_mapping(), {"Loader": 1.0})
        assert all(c.cpu_time_ns == 0.0 for c in result.values())

    def test_zero_elapsed_ops_get_zero_weight(self):
        profile = make_profile({"memmove": ("libc", 600.0)})
        elapsed = {"Loader": 5.0, "RandomResizedCrop": 0.0, "ToTensor": 0.0}
        result = attribute_counters(profile, make_mapping(), elapsed)
        assert result["Loader"].cpu_time_ns == pytest.approx(600.0)
        assert result["RandomResizedCrop"].cpu_time_ns == 0.0

    def test_no_elapsed_falls_back_to_equal(self):
        profile = make_profile({"memmove": ("libc", 600.0)})
        result = attribute_counters(profile, make_mapping(), {})
        assert result["Loader"].cpu_time_ns == pytest.approx(200.0)

    def test_negative_elapsed_raises(self):
        profile = make_profile({"memmove": ("libc", 1.0)})
        with pytest.raises(MappingError):
            attribute_counters(profile, make_mapping(), {"Loader": -1.0})


class TestEqualSplitAblation:
    def test_equal_weights(self):
        profile = make_profile({"memmove": ("libc", 900.0)})
        result = attribute_counters_equal_split(profile, make_mapping())
        assert result["Loader"].cpu_time_ns == pytest.approx(300.0)
        assert result["ToTensor"].cpu_time_ns == pytest.approx(300.0)

    def test_misattribution_vs_time_weighted(self):
        """Equal splitting inflates light ops: the paper quantifies a ~30%
        RandomResizedCrop inflation when decode_mcu is mis-bucketed."""
        profile = make_profile(
            {"memmove": ("libc", 1000.0), "decode_mcu": ("libjpeg", 3000.0)}
        )
        elapsed = {"Loader": 10.0, "RandomResizedCrop": 1.0, "ToTensor": 1.0}
        weighted = attribute_counters(profile, make_mapping(), elapsed)
        # Build a *wrong* mapping that buckets decode_mcu under RRC too.
        bad = make_mapping()
        bad.add(
            "RandomResizedCrop",
            [("resample", "pillow"), ("memmove", "libc"), ("decode_mcu", "libjpeg")],
        )
        equal = attribute_counters_equal_split(profile, bad)
        inflation = (
            equal["RandomResizedCrop"].cpu_time_ns
            / max(weighted["RandomResizedCrop"].cpu_time_ns, 1e-9)
        )
        assert inflation > 1.3
