import time

import pytest

from repro.datasets.filestore import SimulatedRemoteStore
from repro.errors import ReproError


class TestSimulatedRemoteStore:
    def test_returns_blobs(self):
        store = SimulatedRemoteStore([b"a", b"bb"], base_latency_s=0, bandwidth_mb_s=0)
        assert store[0] == b"a"
        assert store[1] == b"bb"
        assert len(store) == 2

    def test_latency_applied(self):
        store = SimulatedRemoteStore([b"x"], base_latency_s=0.02, bandwidth_mb_s=0)
        start = time.monotonic()
        store[0]
        assert time.monotonic() - start >= 0.015

    def test_bandwidth_term(self):
        blob = b"z" * 2_000_000  # 2 MB at 100 MB/s -> ~20 ms
        store = SimulatedRemoteStore([blob], base_latency_s=0, bandwidth_mb_s=100)
        start = time.monotonic()
        store[0]
        assert time.monotonic() - start >= 0.015

    def test_stats_accounting(self):
        store = SimulatedRemoteStore([b"abc", b"de"], base_latency_s=0, bandwidth_mb_s=0)
        store[0]
        store[1]
        assert store.stats == {"reads": 2, "bytes_read": 5}

    def test_validation(self):
        with pytest.raises(ReproError):
            SimulatedRemoteStore([b"a"], base_latency_s=-1)
        with pytest.raises(ReproError):
            SimulatedRemoteStore([b"a"], bandwidth_mb_s=-1)

    def test_works_as_dataloader_source(self, small_blobs):
        from repro.data.dataset import BlobImageDataset

        store = SimulatedRemoteStore(small_blobs, base_latency_s=0, bandwidth_mb_s=0)
        ds = BlobImageDataset(store)
        image, _ = ds[0]
        assert image.mode == "RGB"
        assert store.stats["reads"] == 1
