import pytest

from repro.core.lotustrace import InMemoryTraceLog, KIND_OP
from repro.core.lotustrace.context import worker_identity
from repro.errors import ReproError
from repro.transforms import Compose


class AddOne:
    def __call__(self, x):
        return x + 1


class Double:
    def __call__(self, x):
        return x * 2


class TestCompose:
    def test_applies_in_order(self):
        assert Compose([AddOne(), Double()])(3) == 8
        assert Compose([Double(), AddOne()])(3) == 7

    def test_empty_compose_identity(self):
        assert Compose([])(42) == 42

    def test_non_callable_rejected(self):
        with pytest.raises(ReproError):
            Compose([AddOne(), "not callable"])

    def test_len_and_repr(self):
        compose = Compose([AddOne(), Double()])
        assert len(compose) == 2
        assert "AddOne" in repr(compose) and "Double" in repr(compose)


class TestComposeInstrumentation:
    def test_logs_one_record_per_transform(self):
        log = InMemoryTraceLog()
        Compose([AddOne(), Double()], log_transform_elapsed_time=log)(1)
        records = log.records()
        assert [r.name for r in records] == ["AddOne", "Double"]
        assert all(r.kind == KIND_OP for r in records)
        assert all(r.duration_ns >= 0 for r in records)

    def test_no_log_when_disabled(self):
        # The uninstrumented path must not require a sink at all.
        compose = Compose([AddOne()])
        assert compose.log_sink is None
        assert compose(1) == 2

    def test_records_worker_identity(self):
        log = InMemoryTraceLog()
        compose = Compose([AddOne()], log_transform_elapsed_time=log)
        with worker_identity(3):
            compose(0)
        assert log.records()[0].worker_id == 3

    def test_main_process_identity_default(self):
        log = InMemoryTraceLog()
        Compose([AddOne()], log_transform_elapsed_time=log)(0)
        assert log.records()[0].worker_id == -1

    def test_timestamps_monotonic_within_call(self):
        log = InMemoryTraceLog()
        Compose([AddOne(), Double(), AddOne()], log_transform_elapsed_time=log)(0)
        records = log.records()
        for earlier, later in zip(records, records[1:]):
            assert later.start_ns >= earlier.end_ns

    def test_set_log_sink_after_construction(self):
        compose = Compose([AddOne()])
        log = InMemoryTraceLog()
        compose.set_log_sink(log)
        compose(0)
        assert len(log.records()) == 1

    def test_log_to_file(self, tmp_path):
        from repro.core.lotustrace import parse_trace_file

        path = tmp_path / "ops.trace"
        compose = Compose([AddOne()], log_transform_elapsed_time=path)
        compose(0)
        compose.log_sink.flush()
        records = parse_trace_file(path)
        assert len(records) == 1
        assert records[0].name == "AddOne"
