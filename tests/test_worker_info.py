"""Iterable-dataset sharding via get_worker_info (torch semantics)."""

import numpy as np
import pytest

from repro.data.dataloader import DataLoader
from repro.data.worker_info import (
    ShardedIterableDataset,
    WorkerInfo,
    get_worker_info,
    worker_info_scope,
)


def items(n):
    return [np.array([float(i)]) for i in range(n)]


class TestWorkerInfo:
    def test_none_in_main_process(self):
        assert get_worker_info() is None

    def test_scope_sets_and_restores(self):
        info = WorkerInfo(worker_id=2, num_workers=4)
        with worker_info_scope(info):
            assert get_worker_info() == info
        assert get_worker_info() is None

    def test_nested_scopes(self):
        outer = WorkerInfo(worker_id=0, num_workers=2)
        inner = WorkerInfo(worker_id=1, num_workers=2)
        with worker_info_scope(outer):
            with worker_info_scope(inner):
                assert get_worker_info().worker_id == 1
            assert get_worker_info().worker_id == 0


class TestShardedIterableDataset:
    def test_main_process_full_stream(self):
        dataset = ShardedIterableDataset(items(6))
        values = [float(v[0]) for v in dataset]
        assert values == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_strided_shards(self):
        dataset = ShardedIterableDataset(items(7))
        with worker_info_scope(WorkerInfo(worker_id=1, num_workers=3)):
            values = [float(v[0]) for v in dataset]
        assert values == [1.0, 4.0]

    def test_shards_partition(self):
        dataset = ShardedIterableDataset(items(10))
        seen = []
        for worker_id in range(3):
            with worker_info_scope(WorkerInfo(worker_id, 3)):
                seen.extend(float(v[0]) for v in dataset)
        assert sorted(seen) == [float(i) for i in range(10)]


class TestIterableThroughDataLoader:
    def test_single_worker_stream(self):
        loader = DataLoader(ShardedIterableDataset(items(10)), batch_size=4,
                            num_workers=1)
        values = sorted(
            v for batch in loader for v in batch.numpy().ravel().tolist()
        )
        assert values == [float(i) for i in range(10)]

    def test_multi_worker_no_duplicates(self):
        """Without sharding, each worker would replay the full stream;
        with get_worker_info striding, every item appears exactly once."""
        loader = DataLoader(ShardedIterableDataset(items(20)), batch_size=4,
                            num_workers=3)
        values = sorted(
            v for batch in loader for v in batch.numpy().ravel().tolist()
        )
        assert values == [float(i) for i in range(20)]

    def test_multi_worker_uneven_shards(self):
        loader = DataLoader(ShardedIterableDataset(items(7)), batch_size=2,
                            num_workers=2)
        values = sorted(
            v for batch in loader for v in batch.numpy().ravel().tolist()
        )
        assert values == [float(i) for i in range(7)]

    def test_epoch_terminates_after_exhaustion(self):
        # More prefetch than data: stream-end signals must not hang the
        # epoch or produce phantom batches.
        loader = DataLoader(
            ShardedIterableDataset(items(4)), batch_size=2, num_workers=4,
            prefetch_factor=3,
        )
        batches = list(loader)
        total = sum(len(batch) for batch in batches)
        assert total == 4

    def test_single_process_iterable(self):
        loader = DataLoader(ShardedIterableDataset(items(5)), batch_size=2,
                            num_workers=0)
        values = [v for batch in loader for v in batch.numpy().ravel().tolist()]
        assert values == [0.0, 1.0, 2.0, 3.0, 4.0]
