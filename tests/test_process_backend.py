"""Process-backed DataLoader workers (the paper's forked architecture)."""

import glob
import os

import numpy as np
import pytest

from repro.core.lotustrace import (
    InMemoryTraceLog,
    KIND_BATCH_PREPROCESSED,
    KIND_BATCH_TRANSPORT,
    TRANSPORT_INLINE,
    TRANSPORT_PICKLE,
    TRANSPORT_SHM,
    analyze_trace,
    parse_trace_file,
    parse_transport_name,
)
from repro.data.backends import create_backend
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset, TensorDataset
from repro.data.faults import FaultInjectingDataset, FaultPlan, FaultSite
from repro.errors import DataLoaderError


def live_slab_segments():
    """Names of shm transport segments currently linked in /dev/shm."""
    return sorted(
        os.path.basename(p)
        for p in glob.glob(f"/dev/shm/lt{os.getpid()}q*")
    )


class ArrayDataset(Dataset):
    def __init__(self, n=16):
        self._n = n

    def __getitem__(self, index):
        return np.array([float(index)])

    def __len__(self):
        return self._n


class TestBackendFactory:
    def test_thread_backend(self):
        backend = create_backend("thread")
        assert not backend.is_process

    def test_process_backend(self):
        backend = create_backend("process")
        assert backend.is_process

    def test_unknown_backend(self):
        with pytest.raises(DataLoaderError):
            create_backend("greenlet")

    def test_loader_validates_backend_eagerly(self):
        with pytest.raises(DataLoaderError):
            DataLoader(ArrayDataset(), worker_backend="bogus")


class TestProcessWorkers:
    def test_epoch_in_order(self):
        loader = DataLoader(
            ArrayDataset(16), batch_size=4, num_workers=2,
            worker_backend="process",
        )
        batches = [batch.numpy().ravel().tolist() for batch in loader]
        assert batches == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15],
        ]

    def test_workers_are_real_processes(self, tmp_path):
        """T1 records from process workers carry child pids, distinct
        from the main process (why the paper needs psutil at log time)."""
        path = tmp_path / "proc.trace"
        loader = DataLoader(
            ArrayDataset(8), batch_size=4, num_workers=2,
            worker_backend="process", log_file=str(path),
        )
        list(loader)
        records = parse_trace_file(path)
        fetches = [r for r in records if r.kind == KIND_BATCH_PREPROCESSED]
        assert fetches
        assert all(r.pid != os.getpid() for r in fetches)
        main_records = [r for r in records if r.worker_id == -1]
        assert all(r.pid == os.getpid() for r in main_records)

    def test_trace_analysis_complete(self, tmp_path):
        path = tmp_path / "proc2.trace"
        loader = DataLoader(
            ArrayDataset(12), batch_size=4, num_workers=2,
            worker_backend="process", log_file=str(path),
        )
        list(loader)
        analysis = analyze_trace(parse_trace_file(path))
        assert len(analysis.batches) == 3
        for flow in analysis.batches.values():
            assert flow.preprocessed is not None
            assert flow.consumed is not None

    def test_in_memory_sink_rejected(self):
        loader = DataLoader(
            ArrayDataset(8), batch_size=4, num_workers=2,
            worker_backend="process", log_file=InMemoryTraceLog(),
        )
        with pytest.raises(DataLoaderError):
            iter(loader)

    def test_image_pipeline_through_processes(self, small_blobs, tmp_path):
        from repro.data.dataset import BlobImageDataset
        from repro.transforms import Compose, RandomResizedCrop, ToTensor

        dataset = BlobImageDataset(
            small_blobs,
            transform=Compose([RandomResizedCrop(32, seed=0), ToTensor()]),
        )
        loader = DataLoader(
            dataset, batch_size=4, num_workers=2, worker_backend="process",
            log_file=str(tmp_path / "img.trace"),
        )
        shapes = [batch[0].shape for batch in loader]
        assert all(shape[1:] == (3, 32, 32) for shape in shapes)


# -- shm transport (DESIGN.md §10) -------------------------------------------


def _image_dataset(n=16):
    rng = np.random.default_rng(7)
    pixels = rng.random((n, 3, 8, 8)).astype(np.float32)
    labels = np.arange(n, dtype=np.int64)
    return TensorDataset(pixels, labels)


def _run_epoch(dataset, transport, **kwargs):
    loader = DataLoader(
        dataset, batch_size=4, num_workers=2, worker_backend="process",
        transport=transport, seed=0, **kwargs,
    )
    return list(loader)


class TestTransportParity:
    """Pickle is the parity oracle: shm must be bit-exact against it."""

    def test_full_batches_bit_exact(self):
        via_pickle = _run_epoch(_image_dataset(), "pickle")
        via_shm = _run_epoch(_image_dataset(), "shm")
        assert len(via_pickle) == len(via_shm) == 4
        for p, s in zip(via_pickle, via_shm):
            assert np.array_equal(p[0].numpy(), s[0].numpy())
            assert np.array_equal(p[1].numpy(), s[1].numpy())

    def test_partial_trailing_batch(self):
        via_pickle = _run_epoch(_image_dataset(10), "pickle")
        via_shm = _run_epoch(_image_dataset(10), "shm")
        assert via_shm[-1][0].shape[0] == 2
        for p, s in zip(via_pickle, via_shm):
            assert np.array_equal(p[0].numpy(), s[0].numpy())

    def test_failure_policy_partial_batches(self):
        def faulty():
            plan = FaultPlan(
                sites=(FaultSite(kind="corrupt", sample_index=5),)
            )
            return FaultInjectingDataset(_image_dataset(), plan)

        via_pickle = _run_epoch(faulty(), "pickle", failure_policy="skip_sample")
        via_shm = _run_epoch(faulty(), "shm", failure_policy="skip_sample")
        sizes = [batch[0].shape[0] for batch in via_shm]
        assert sorted(sizes) == [3, 4, 4, 4]
        for p, s in zip(via_pickle, via_shm):
            assert np.array_equal(p[0].numpy(), s[0].numpy())
            assert np.array_equal(p[1].numpy(), s[1].numpy())

    def test_rng_transform_parity(self, small_blobs):
        """Seeded random transforms land identically over both carriers."""
        from repro.data.dataset import BlobImageDataset
        from repro.transforms import Compose, RandomResizedCrop, ToTensor

        def dataset():
            return BlobImageDataset(
                small_blobs,
                transform=Compose([RandomResizedCrop(16, seed=3), ToTensor()]),
            )

        via_pickle = _run_epoch(dataset(), "pickle")
        via_shm = _run_epoch(dataset(), "shm")
        for p, s in zip(via_pickle, via_shm):
            assert np.array_equal(p[0].numpy(), s[0].numpy())

    def test_non_tensor_payload_falls_back(self):
        class StrDataset(Dataset):
            def __len__(self):
                return 8

            def __getitem__(self, index):
                return f"sample-{index}"

        batches = _run_epoch(StrDataset(), "shm")
        assert batches[0] == ["sample-0", "sample-1", "sample-2", "sample-3"]

    def test_shm_batches_arrive_pinned(self):
        for batch in _run_epoch(_image_dataset(), "shm"):
            assert batch[0].pinned
            assert batch[0].pin_memory() is batch[0]

    def test_transport_knob_validation(self):
        with pytest.raises(DataLoaderError):
            DataLoader(_image_dataset(), transport="carrier-pigeon")
        with pytest.raises(DataLoaderError):
            DataLoader(_image_dataset(), num_workers=0, transport="shm")
        with pytest.raises(DataLoaderError):
            DataLoader(
                _image_dataset(), num_workers=2, worker_backend="thread",
                transport="shm",
            )


class TestTransportTraceRecords:
    def _transport_records(self, tmp_path, transport, backend="process"):
        path = tmp_path / f"{transport}-{backend}.trace"
        loader = DataLoader(
            _image_dataset(), batch_size=4, num_workers=2,
            worker_backend=backend, transport=transport, seed=0,
            log_file=str(path),
        )
        list(loader)
        records = parse_trace_file(path)
        return [r for r in records if r.kind == KIND_BATCH_TRANSPORT]

    def test_shm_records_one_copy(self, tmp_path):
        records = self._transport_records(tmp_path, "shm")
        assert len(records) == 4
        for record in records:
            mode, payload_bytes, copies = parse_transport_name(record.name)
            assert mode == TRANSPORT_SHM
            assert payload_bytes == 4 * (3 * 8 * 8 * 4 + 8)
            assert copies == 1

    def test_pickle_records_two_copies(self, tmp_path):
        records = self._transport_records(tmp_path, "pickle")
        for record in records:
            mode, payload_bytes, copies = parse_transport_name(record.name)
            assert mode == TRANSPORT_PICKLE
            assert payload_bytes == 4 * (3 * 8 * 8 * 4 + 8)
            assert copies == 2

    def test_thread_backend_inline_record(self, tmp_path):
        records = self._transport_records(tmp_path, "auto", backend="thread")
        assert len(records) == 4
        for record in records:
            mode, payload_bytes, copies = parse_transport_name(record.name)
            assert mode == TRANSPORT_INLINE
            assert payload_bytes == 0
            assert copies == 0

    def test_transport_stats_aggregation(self, tmp_path):
        path = tmp_path / "agg.trace"
        loader = DataLoader(
            _image_dataset(), batch_size=4, num_workers=2,
            worker_backend="process", transport="shm", seed=0,
            log_file=str(path),
        )
        list(loader)
        analysis = analyze_trace(parse_trace_file(path))
        stats = analysis.transport_stats()
        assert set(stats) == {TRANSPORT_SHM}
        assert stats[TRANSPORT_SHM].batches == 4
        assert stats[TRANSPORT_SHM].copies == 4
        assert stats[TRANSPORT_SHM].bytes_per_batch == 4 * (3 * 8 * 8 * 4 + 8)


class TestShmSegmentLifecycle:
    """Chaos contract: no shm segment survives restart or shutdown."""

    def test_clean_epoch_leaves_no_segments(self):
        _run_epoch(_image_dataset(), "shm")
        assert live_slab_segments() == []

    def test_worker_crash_restart_replays_and_unlinks(self):
        plan = FaultPlan(sites=(FaultSite(kind="crash", sample_index=9),))
        dataset = FaultInjectingDataset(_image_dataset(), plan)
        loader = DataLoader(
            dataset, batch_size=4, num_workers=2, worker_backend="process",
            transport="shm", seed=0, max_worker_restarts=2,
            hang_timeout_s=20.0,
        )
        batches = list(loader)
        assert loader.fault_stats.worker_restarts >= 1
        reference = _run_epoch(_image_dataset(), "pickle")
        assert len(batches) == len(reference)
        for got, want in zip(batches, reference):
            assert np.array_equal(got[0].numpy(), want[0].numpy())
        assert live_slab_segments() == []

    def test_worker_hang_restart_replays_and_unlinks(self):
        plan = FaultPlan(
            seed=0, sites=(FaultSite(kind="hang", sample_index=6, hang_s=10.0),)
        )
        dataset = FaultInjectingDataset(_image_dataset(), plan)
        loader = DataLoader(
            dataset, batch_size=4, num_workers=2, worker_backend="process",
            transport="shm", seed=0, max_worker_restarts=1,
            hang_timeout_s=0.5, worker_timeout_s=30,
        )
        batches = list(loader)
        assert loader.fault_stats.worker_restarts == 1
        reference = _run_epoch(_image_dataset(), "pickle")
        for got, want in zip(batches, reference):
            assert np.array_equal(got[0].numpy(), want[0].numpy())
        assert live_slab_segments() == []

    def test_mid_epoch_close_unlinks(self):
        loader = DataLoader(
            _image_dataset(32), batch_size=2, num_workers=2,
            worker_backend="process", transport="shm", seed=0,
        )
        iterator = iter(loader)
        first = next(iterator)
        assert first[0].shape == (2, 3, 8, 8)
        iterator.close()
        assert live_slab_segments() == []

    def test_persistent_workers_epochs_then_close(self):
        loader = DataLoader(
            _image_dataset(10), batch_size=3, num_workers=2,
            worker_backend="process", transport="shm", seed=0,
            persistent_workers=True,
        )
        first = [batch[0].numpy().copy() for batch in loader]
        second = [batch[0].numpy().copy() for batch in loader]
        assert len(first) == len(second) == 4
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        loader.close()
        assert live_slab_segments() == []
