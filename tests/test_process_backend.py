"""Process-backed DataLoader workers (the paper's forked architecture)."""

import os

import numpy as np
import pytest

from repro.core.lotustrace import (
    InMemoryTraceLog,
    KIND_BATCH_PREPROCESSED,
    analyze_trace,
    parse_trace_file,
)
from repro.data.backends import create_backend
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.errors import DataLoaderError


class ArrayDataset(Dataset):
    def __init__(self, n=16):
        self._n = n

    def __getitem__(self, index):
        return np.array([float(index)])

    def __len__(self):
        return self._n


class TestBackendFactory:
    def test_thread_backend(self):
        backend = create_backend("thread")
        assert not backend.is_process

    def test_process_backend(self):
        backend = create_backend("process")
        assert backend.is_process

    def test_unknown_backend(self):
        with pytest.raises(DataLoaderError):
            create_backend("greenlet")

    def test_loader_validates_backend_eagerly(self):
        with pytest.raises(DataLoaderError):
            DataLoader(ArrayDataset(), worker_backend="bogus")


class TestProcessWorkers:
    def test_epoch_in_order(self):
        loader = DataLoader(
            ArrayDataset(16), batch_size=4, num_workers=2,
            worker_backend="process",
        )
        batches = [batch.numpy().ravel().tolist() for batch in loader]
        assert batches == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15],
        ]

    def test_workers_are_real_processes(self, tmp_path):
        """T1 records from process workers carry child pids, distinct
        from the main process (why the paper needs psutil at log time)."""
        path = tmp_path / "proc.trace"
        loader = DataLoader(
            ArrayDataset(8), batch_size=4, num_workers=2,
            worker_backend="process", log_file=str(path),
        )
        list(loader)
        records = parse_trace_file(path)
        fetches = [r for r in records if r.kind == KIND_BATCH_PREPROCESSED]
        assert fetches
        assert all(r.pid != os.getpid() for r in fetches)
        main_records = [r for r in records if r.worker_id == -1]
        assert all(r.pid == os.getpid() for r in main_records)

    def test_trace_analysis_complete(self, tmp_path):
        path = tmp_path / "proc2.trace"
        loader = DataLoader(
            ArrayDataset(12), batch_size=4, num_workers=2,
            worker_backend="process", log_file=str(path),
        )
        list(loader)
        analysis = analyze_trace(parse_trace_file(path))
        assert len(analysis.batches) == 3
        for flow in analysis.batches.values():
            assert flow.preprocessed is not None
            assert flow.consumed is not None

    def test_in_memory_sink_rejected(self):
        loader = DataLoader(
            ArrayDataset(8), batch_size=4, num_workers=2,
            worker_backend="process", log_file=InMemoryTraceLog(),
        )
        with pytest.raises(DataLoaderError):
            iter(loader)

    def test_image_pipeline_through_processes(self, small_blobs, tmp_path):
        from repro.data.dataset import BlobImageDataset
        from repro.transforms import Compose, RandomResizedCrop, ToTensor

        dataset = BlobImageDataset(
            small_blobs,
            transform=Compose([RandomResizedCrop(32, seed=0), ToTensor()]),
        )
        loader = DataLoader(
            dataset, batch_size=4, num_workers=2, worker_backend="process",
            log_file=str(tmp_path / "img.trace"),
        )
        shapes = [batch[0].shape for batch in loader]
        assert all(shape[1:] == (3, 32, 32) for shape in shapes)
