"""Parity and property tests for the vectorized substrate hot paths.

The tentpole contract: the block-parallel SJPG entropy codec, the numpy
sample replay, and the per-thread event recording must preserve the
*observable profiling semantics* of the original per-item loops — same
bytes, same arrays, same native call-event streams (names, depths,
refill cadence), and bit-identical seeded results. The scalar reference
implementations are retained in the modules (`entropy_mode("scalar")`)
or reproduced here verbatim as oracles.
"""

import bisect
import threading

import numpy as np
import pytest

from repro.clib.events import (
    CallEvent,
    EventRecorder,
    attach_recorder,
    detach_recorder,
    native_span,
)
from repro.errors import CodecError
from repro.hwprof.sampling import (
    INTERPRETER_SYMBOLS,
    Sample,
    build_leaf_segments,
    replay_samples,
)
from repro.imaging.jpeg.entropy import (
    _REFILL_PERIOD,
    decode_mcu,
    encode_mcu_huff,
    encoded_length,
    entropy_mode,
)
from repro.imaging.jpeg.tables import BLOCK

# Block counts straddling the refill period (16): empty, single, exactly
# one window, one window plus one block, and many windows.
BLOCK_COUNTS = (0, 1, 16, 17, 1000)


def random_blocks(n, density=0.2, seed=0):
    rng = np.random.default_rng(seed)
    blocks = np.zeros((n, BLOCK, BLOCK), dtype=np.int16)
    mask = rng.random(size=blocks.shape) < density
    blocks[mask] = rng.integers(-500, 500, size=int(mask.sum()), dtype=np.int16)
    return blocks


class TestEntropyParity:
    @pytest.mark.parametrize("n_blocks", BLOCK_COUNTS)
    @pytest.mark.parametrize("density", (0.0, 0.2, 1.0))
    def test_encode_bytes_identical(self, n_blocks, density):
        blocks = random_blocks(n_blocks, density=density, seed=n_blocks)
        with entropy_mode("scalar"):
            reference = encode_mcu_huff(blocks)
        assert encode_mcu_huff(blocks) == reference

    @pytest.mark.parametrize("n_blocks", BLOCK_COUNTS)
    @pytest.mark.parametrize("density", (0.0, 0.2, 1.0))
    def test_roundtrip_and_decode_parity(self, n_blocks, density):
        blocks = random_blocks(n_blocks, density=density, seed=n_blocks + 7)
        payload = encode_mcu_huff(blocks)
        decoded = decode_mcu(payload, n_blocks)
        assert np.array_equal(decoded, blocks)
        with entropy_mode("scalar"):
            assert np.array_equal(decode_mcu(payload, n_blocks), decoded)

    @pytest.mark.parametrize("n_blocks", BLOCK_COUNTS)
    def test_encoded_length_agrees_with_encoder(self, n_blocks):
        blocks = random_blocks(n_blocks, density=0.3, seed=n_blocks + 11)
        assert encoded_length(blocks) == len(encode_mcu_huff(blocks))

    @pytest.mark.parametrize("mode", ("vectorized", "scalar"))
    def test_truncated_payload_raises(self, mode):
        blocks = random_blocks(40, density=0.4, seed=1)
        payload = encode_mcu_huff(blocks)
        with entropy_mode(mode):
            for cut in (1, 2, 3, 7, len(payload) // 2, len(payload) - 1):
                with pytest.raises(CodecError):
                    decode_mcu(payload[:cut], 40)

    @pytest.mark.parametrize("mode", ("vectorized", "scalar"))
    def test_overlong_payload_raises(self, mode):
        """Trailing garbage after the last block must be rejected."""
        blocks = random_blocks(20, density=0.3, seed=2)
        payload = encode_mcu_huff(blocks)
        with entropy_mode(mode):
            for extra in (b"\x00", b"\x00" * 3, b"junk-trailing-bytes"):
                with pytest.raises(CodecError, match="trailing garbage"):
                    decode_mcu(payload + extra, 20)
            with pytest.raises(CodecError, match="trailing garbage"):
                decode_mcu(b"\x00\x00\x00", 0)

    def test_refill_cadence_preserved(self):
        """Both modes call jpeg_fill_bit_buffer every _REFILL_PERIOD MCUs
        with identical (offset, size) arguments — the event stream a
        hardware profile of decode_mcu contains is unchanged."""
        blocks = random_blocks(3 * _REFILL_PERIOD + 5, density=0.25, seed=3)
        payload = encode_mcu_huff(blocks)
        streams = {}
        for mode in ("scalar", "vectorized"):
            recorder = EventRecorder()
            attach_recorder(recorder)
            try:
                with entropy_mode(mode):
                    decode_mcu(payload, len(blocks))
            finally:
                detach_recorder(recorder)
            streams[mode] = [
                (e.function, e.library, e.depth)
                for e in recorder.events()
            ]
        assert streams["scalar"] == streams["vectorized"]
        refills = [s for s in streams["vectorized"] if s[0] == "jpeg_fill_bit_buffer"]
        assert len(refills) == 4  # ceil(53 / 16)
        assert all(depth == 1 for _, _, depth in refills)

    def test_corrupt_ac_index_raises_both_modes(self):
        blocks = random_blocks(4, density=0.5, seed=4)
        payload = bytearray(encode_mcu_huff(blocks))
        # First block header is 3 bytes; corrupt the first AC record's
        # zigzag index to 63 (maps to coefficient 64, out of range).
        payload[3] = 63
        for mode in ("vectorized", "scalar"):
            with entropy_mode(mode):
                with pytest.raises(CodecError, match="AC index"):
                    decode_mcu(bytes(payload), 4)


def _replay_samples_oracle(
    events,
    interval_ns,
    rng,
    skid_ns=0,
    skid_probability=0.0,
    thread_activity_pad_ns=0,
):
    """Per-sample-point loop with the same seeded draw-order contract as
    the vectorized replay: per thread, one phase draw, one batched coin
    array, one batched interpreter-symbol array."""
    per_thread = build_leaf_segments(events)
    samples = []
    for thread_id, segments in per_thread.items():
        if not segments:
            continue
        starts = [segment.start_ns for segment in segments]

        def segment_at(t_ns):
            index = bisect.bisect_right(starts, t_ns) - 1
            if index < 0:
                return None
            segment = segments[index]
            return segment if segment.start_ns <= t_ns < segment.end_ns else None

        t_begin = segments[0].start_ns - thread_activity_pad_ns
        t_end = segments[-1].end_ns + thread_activity_pad_ns
        phase = int(rng.integers(0, interval_ns))
        points = list(range(t_begin + phase, t_end, interval_ns))
        if not points:
            continue
        coins = (
            rng.random(len(points)) < skid_probability
            if skid_probability > 0
            else [False] * len(points)
        )
        resolved = []
        n_miss = 0
        for t, coin in zip(points, coins):
            skidded = False
            segment = None
            if coin:
                segment = segment_at(t - skid_ns)
                skidded = segment is not None
            if not skidded:
                segment = segment_at(t)
            if segment is None:
                n_miss += 1
            resolved.append((t, segment, skidded))
        symbols = iter(
            rng.integers(0, len(INTERPRETER_SYMBOLS), size=n_miss) if n_miss else []
        )
        for t, segment, skidded in resolved:
            samples.append(
                Sample(
                    t_ns=t,
                    thread_id=thread_id,
                    segment=segment,
                    interpreter_symbol=(
                        None if segment is not None
                        else INTERPRETER_SYMBOLS[int(next(symbols))]
                    ),
                    skidded=skidded,
                    interval_ns=interval_ns,
                )
            )
    samples.sort(key=lambda sample: sample.t_ns)
    return samples


def _sample_key(sample):
    return (
        sample.t_ns,
        sample.thread_id,
        sample.identity,
        sample.skidded,
        None if sample.segment is None
        else (sample.segment.start_ns, sample.segment.end_ns, sample.segment.stack),
    )


US = 1_000


def make_events(seed, n=40, threads=2):
    """Nested two-level call trees across threads with gaps."""
    rng = np.random.default_rng(seed)
    events = []
    for thread in range(1, threads + 1):
        cursor = int(rng.integers(0, 50)) * US
        for _ in range(n):
            duration = int(rng.integers(50, 4000)) * US
            events.append(
                CallEvent(
                    thread_id=thread, function=f"outer{thread}", library="libjpeg",
                    start_ns=cursor, duration_ns=duration, depth=0, active_threads=1,
                )
            )
            inner = duration // 3
            if inner > 0:
                events.append(
                    CallEvent(
                        thread_id=thread, function="inner", library="libc",
                        start_ns=cursor + inner, duration_ns=inner, depth=1,
                        active_threads=1,
                    )
                )
            cursor += duration + int(rng.integers(0, 3000)) * US
    return events


class TestReplayParity:
    @pytest.mark.parametrize("skid_probability", (0.0, 0.3, 1.0))
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_vectorized_matches_oracle(self, skid_probability, seed):
        events = make_events(seed)
        kwargs = dict(
            interval_ns=700 * US,
            skid_ns=150 * US,
            skid_probability=skid_probability,
            thread_activity_pad_ns=500 * US,
        )
        got = replay_samples(events, rng=np.random.default_rng(seed + 10), **kwargs)
        expected = _replay_samples_oracle(
            events, rng=np.random.default_rng(seed + 10), **kwargs
        )
        assert [_sample_key(s) for s in got] == [_sample_key(s) for s in expected]

    def test_interpreter_symbols_identical_for_seed(self):
        """Misses must draw the same symbols as the oracle (same rng
        stream position), not merely symbols from the same set."""
        events = make_events(5, n=10)
        got = replay_samples(
            events, interval_ns=900 * US, rng=np.random.default_rng(3),
            thread_activity_pad_ns=5000 * US,
        )
        expected = _replay_samples_oracle(
            events, interval_ns=900 * US, rng=np.random.default_rng(3),
            thread_activity_pad_ns=5000 * US,
        )
        misses = [s.interpreter_symbol for s in got if s.segment is None]
        assert misses  # the pad guarantees idle points
        assert misses == [s.interpreter_symbol for s in expected if s.segment is None]

    def test_deep_nesting_does_not_recurse(self):
        """_emit_self_segments must survive call trees deeper than the
        interpreter recursion limit."""
        depth = 5000
        events = [
            CallEvent(
                thread_id=1, function=f"f{d}", library="lib",
                start_ns=d, duration_ns=2 * (depth - d) + 1, depth=d,
                active_threads=1,
            )
            for d in range(depth)
        ]
        segments = build_leaf_segments(events)[1]
        assert len(segments) == 2 * depth - 1
        deepest = max(segments, key=lambda s: len(s.stack))
        assert len(deepest.stack) == depth


class TestRecorderParity:
    def test_events_merge_across_threads_sorted(self):
        recorder = EventRecorder()
        attach_recorder(recorder)
        barrier = threading.Barrier(4)

        def work(k):
            barrier.wait()
            for i in range(50):
                with native_span(f"fn{k}", "lib"):
                    pass

        threads = [threading.Thread(target=work, args=(k,)) for k in range(4)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            detach_recorder(recorder)
        events = recorder.events()
        assert len(events) == 200
        assert len(recorder) == 200
        stamps = [(e.start_ns, e.depth) for e in events]
        assert stamps == sorted(stamps)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.events() == []

    def test_record_after_clear_reuses_buffers(self):
        recorder = EventRecorder()
        attach_recorder(recorder)
        try:
            with native_span("a", "lib"):
                pass
            recorder.clear()
            with native_span("b", "lib"):
                pass
        finally:
            detach_recorder(recorder)
        assert [e.function for e in recorder.events()] == ["b"]
