import numpy as np
import pytest

from repro.errors import ReproError
from repro.transforms import (
    Cast,
    GaussianNoise,
    RandBalancedCrop,
    RandomBrightnessAugmentation,
    RandomFlip,
)


def make_pair(depth=24, side=32, fg_voxels=40, seed=0):
    rng = np.random.default_rng(seed)
    image = rng.normal(size=(1, depth, side, side)).astype(np.float32)
    label = np.zeros((1, depth, side, side), dtype=np.uint8)
    flat = rng.choice(depth * side * side, size=fg_voxels, replace=False)
    label.reshape(-1)[flat] = 1
    return image, label


class TestRandBalancedCrop:
    def test_output_patch_shape(self):
        crop = RandBalancedCrop((8, 16, 16), seed=1)
        image, label = crop(make_pair())
        assert image.shape == (1, 8, 16, 16)
        assert label.shape == (1, 8, 16, 16)

    def test_small_volume_padded_to_patch(self):
        """Volumes smaller than the patch are edge-padded (MLPerf
        behaviour) so batches always collate to a fixed shape."""
        crop = RandBalancedCrop((64, 64, 64), seed=1)
        image, label = crop(make_pair(depth=16, side=24))
        assert image.shape == (1, 64, 64, 64)
        assert label.shape == (1, 64, 64, 64)

    def test_mixed_depths_collate(self):
        """The BENCH-profile failure mode: heterogeneous case depths must
        still produce uniformly shaped crops."""
        crop = RandBalancedCrop((16, 16, 16), seed=2)
        shallow = crop(make_pair(depth=8, side=24))[0].shape
        deep = crop(make_pair(depth=40, side=24))[0].shape
        assert shallow == deep == (1, 16, 16, 16)

    def test_oversampled_crop_contains_foreground(self):
        crop = RandBalancedCrop((8, 16, 16), oversampling=1.0, seed=2)
        hits = 0
        pair = make_pair(fg_voxels=30, seed=3)
        for _ in range(20):
            _, label = crop(pair)
            hits += int(label.sum() > 0)
        # Foreground-centered crops nearly always contain foreground.
        assert hits >= 18

    def test_no_oversampling_is_uniform(self):
        crop = RandBalancedCrop((8, 8, 8), oversampling=0.0, seed=4)
        image, _ = crop(make_pair())
        assert image.shape == (1, 8, 8, 8)

    def test_empty_label_falls_back(self):
        image = np.zeros((1, 16, 16, 16), dtype=np.float32)
        label = np.zeros((1, 16, 16, 16), dtype=np.uint8)
        crop = RandBalancedCrop((8, 8, 8), oversampling=1.0, seed=5)
        out_image, out_label = crop((image, label))
        assert out_image.shape == (1, 8, 8, 8)

    def test_deterministic(self):
        pair = make_pair(seed=6)
        a = RandBalancedCrop((8, 8, 8), seed=7)(pair)[0]
        b = RandBalancedCrop((8, 8, 8), seed=7)(pair)[0]
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ReproError):
            RandBalancedCrop((8, 8))
        with pytest.raises(ReproError):
            RandBalancedCrop((8, 8, 8), oversampling=1.5)

    def test_shape_mismatch_raises(self):
        image = np.zeros((1, 8, 8, 8), dtype=np.float32)
        label = np.zeros((1, 8, 8, 4), dtype=np.uint8)
        with pytest.raises(ReproError):
            RandBalancedCrop((4, 4, 4), seed=0)((image, label))


class TestRandomFlip:
    def test_image_label_flipped_together(self):
        image, label = make_pair(seed=8)
        out_image, out_label = RandomFlip(p=1.0, seed=9)((image, label))
        # All three axes flipped with p=1.
        assert np.array_equal(out_image, image[:, ::-1, ::-1, ::-1])
        assert np.array_equal(out_label, label[:, ::-1, ::-1, ::-1])

    def test_p_zero_identity(self):
        image, label = make_pair(seed=10)
        out_image, out_label = RandomFlip(p=0.0, seed=11)((image, label))
        assert np.array_equal(out_image, image)

    def test_output_contiguous(self):
        image, label = make_pair()
        out_image, _ = RandomFlip(p=1.0, seed=12)((image, label))
        assert out_image.flags["C_CONTIGUOUS"]


class TestCast:
    def test_casts_image_not_label(self):
        image, label = make_pair()
        out_image, out_label = Cast(np.uint8)((image, label))
        assert out_image.dtype == np.uint8
        assert out_label is label

    def test_arbitrary_dtype(self):
        image, label = make_pair()
        out_image, _ = Cast(np.float16)((image, label))
        assert out_image.dtype == np.float16


class TestRandomBrightnessAugmentation:
    def test_p_one_scales(self):
        image = np.ones((1, 4, 4, 4), dtype=np.float32)
        label = np.zeros((1, 4, 4, 4), dtype=np.uint8)
        out, _ = RandomBrightnessAugmentation(factor=0.3, p=1.0, seed=13)((image, label))
        assert not np.allclose(out, image)
        assert 0.7 <= out.mean() <= 1.3

    def test_p_zero_identity(self):
        image, label = make_pair()
        out, _ = RandomBrightnessAugmentation(p=0.0, seed=14)((image, label))
        assert out is image


class TestGaussianNoise:
    def test_p_one_adds_noise(self):
        image = np.zeros((1, 6, 6, 6), dtype=np.float32)
        label = np.zeros((1, 6, 6, 6), dtype=np.uint8)
        out, _ = GaussianNoise(std=0.5, p=1.0, seed=15)((image, label))
        assert out.std() > 0

    def test_p_zero_identity(self):
        image, label = make_pair()
        out, _ = GaussianNoise(p=0.0, seed=16)((image, label))
        assert out is image

    def test_noise_scale_bounded(self):
        image = np.zeros((1, 8, 8, 8), dtype=np.float32)
        label = np.zeros((1, 8, 8, 8), dtype=np.uint8)
        out, _ = GaussianNoise(std=0.1, p=1.0, seed=17)((image, label))
        assert out.std() < 0.5
