import pytest

from repro.core.lotusmap.filtering import (
    DEFAULT_EXCLUDED_LIBRARIES,
    filter_profiles,
)
from repro.core.lotusmap.mapping import MappedFunction, Mapping, build_mapping
from repro.errors import MappingError
from repro.hwprof.counters import CounterSet
from repro.hwprof.profile import FunctionProfile, HardwareProfile


def profile_with(functions, vendor="intel", samples=5):
    profile = HardwareProfile(vendor, 1000)
    for function, library in functions:
        row = FunctionProfile(function=function, library=library, samples=samples)
        row.counters.add({"cpu_time_ns": samples * 1000.0})
        profile._rows[(function, library)] = row
        profile.total_samples += samples
    return profile


class TestFiltering:
    def test_consistent_functions_kept(self):
        profiles = [profile_with([("f", "lib"), ("g", "lib")]) for _ in range(4)]
        kept = filter_profiles(profiles, min_presence=0.5)
        assert ("f", "lib") in kept and ("g", "lib") in kept

    def test_rare_functions_dropped(self):
        profiles = [profile_with([("common", "lib")]) for _ in range(9)]
        profiles.append(profile_with([("common", "lib"), ("fluke", "lib")]))
        kept = filter_profiles(profiles, min_presence=0.25)
        assert ("common", "lib") in kept
        assert ("fluke", "lib") not in kept

    def test_branchy_functions_survive_partial_presence(self):
        """Data-dependent branches appear in only some runs but must be
        kept (the paper's RandomBrightnessAugmentation case)."""
        profiles = [profile_with([("always", "lib")]) for _ in range(6)]
        for i in range(3):
            profiles[i] = profile_with([("always", "lib"), ("branch", "lib")])
        kept = filter_profiles(profiles, min_presence=0.25)
        assert ("branch", "lib") in kept

    def test_interpreter_libraries_excluded(self):
        profiles = [
            profile_with([("work", "lib"), ("_PyEval_EvalFrameDefault", "libpython3.so")])
        ]
        kept = filter_profiles(profiles)
        assert all(library not in DEFAULT_EXCLUDED_LIBRARIES for _, library in kept)

    def test_ordering_by_sample_weight(self):
        heavy = profile_with([("heavy", "lib")], samples=100)
        light = profile_with([("light", "lib")], samples=1)
        merged = [heavy.merged(light)]
        kept = filter_profiles(merged, min_presence=0.0)
        assert kept[0][0] == "heavy"

    def test_all_empty_profiles(self):
        assert filter_profiles([HardwareProfile("intel", 1000)]) == []

    def test_validation(self):
        with pytest.raises(MappingError):
            filter_profiles([])
        with pytest.raises(MappingError):
            filter_profiles([profile_with([])], min_presence=2.0)


class TestMapping:
    def make_mapping(self):
        mapping = Mapping("intel")
        mapping.add("Loader", [("decode_mcu", "libjpeg"), ("memmove", "libc")])
        mapping.add("RandomResizedCrop", [("resample", "pillow"), ("memmove", "libc")])
        return mapping

    def test_queries(self):
        mapping = self.make_mapping()
        assert mapping.operations() == ["Loader", "RandomResizedCrop"]
        assert mapping.function_names_for("Loader") == {"decode_mcu", "memmove"}
        assert mapping.ops_for("memmove") == ["Loader", "RandomResizedCrop"]
        assert mapping.ops_for("decode_mcu") == ["Loader"]
        assert mapping.ops_for("unknown") == []

    def test_is_preprocessing_function(self):
        mapping = self.make_mapping()
        assert mapping.is_preprocessing_function("resample")
        assert not mapping.is_preprocessing_function("gc_collect")

    def test_missing_op_raises(self):
        with pytest.raises(MappingError):
            self.make_mapping().functions_for("Missing")

    def test_json_roundtrip(self):
        mapping = self.make_mapping()
        restored = Mapping.from_json(mapping.to_json())
        assert restored.vendor == "intel"
        assert restored.operations() == mapping.operations()
        assert restored.function_names_for("Loader") == mapping.function_names_for("Loader")

    def test_save_load(self, tmp_path):
        path = tmp_path / "mapping_funcs.json"
        mapping = self.make_mapping()
        mapping.save(path)
        assert Mapping.load(path).function_names_for("Loader") == {
            "decode_mcu", "memmove",
        }

    def test_malformed_json(self):
        with pytest.raises(MappingError):
            Mapping.from_json("{not json")
        with pytest.raises(MappingError):
            Mapping.from_json("{}")

    def test_vendor_specific_diff(self):
        intel = self.make_mapping()
        amd = Mapping("amd")
        amd.add("Loader", [("decode_mcu", "libjpeg"), ("sep_upsample", "libjpeg")])
        assert intel.vendor_specific_vs(amd, "Loader") == {"memmove"}
        assert amd.vendor_specific_vs(intel, "Loader") == {"sep_upsample"}

    def test_vendor_specific_missing_op(self):
        intel = self.make_mapping()
        empty = Mapping("amd")
        assert intel.vendor_specific_vs(empty, "Loader") == {"decode_mcu", "memmove"}

    def test_contains_len(self):
        mapping = self.make_mapping()
        assert "Loader" in mapping
        assert len(mapping) == 2


class TestBuildMapping:
    def test_empty_operations_raises(self):
        from repro.hwprof import VTuneLikeProfiler

        with pytest.raises(MappingError):
            build_mapping({}, VTuneLikeProfiler)
