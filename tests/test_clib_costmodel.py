import pytest

from repro.clib.costmodel import (
    BALANCED,
    BRANCHY,
    COMPUTE_BOUND,
    MEMORY_BOUND,
    ContentionModel,
    CostSignature,
)


class TestCostSignature:
    def test_defaults_valid(self):
        CostSignature()

    def test_bound_fraction_validation(self):
        with pytest.raises(ValueError):
            CostSignature(front_end_bound=1.5)
        with pytest.raises(ValueError):
            CostSignature(dram_bound=-0.1)

    def test_positive_rates_required(self):
        with pytest.raises(ValueError):
            CostSignature(ipc=0)
        with pytest.raises(ValueError):
            CostSignature(uops_per_instruction=-1)

    def test_presets_distinct(self):
        assert COMPUTE_BOUND.ipc > MEMORY_BOUND.ipc
        assert MEMORY_BOUND.dram_bound > COMPUTE_BOUND.dram_bound
        assert BRANCHY.branch_mpki > BALANCED.branch_mpki


class TestContentionModel:
    def test_single_thread_identity(self):
        model = ContentionModel()
        sig = model.effective(BALANCED, 1)
        assert sig.front_end_bound == BALANCED.front_end_bound
        assert sig.dram_bound == BALANCED.dram_bound
        assert sig.ipc == BALANCED.ipc

    def test_front_end_bound_rises_with_threads(self):
        model = ContentionModel()
        values = [model.effective(BALANCED, n).front_end_bound for n in (1, 2, 4, 8)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_front_end_bound_capped(self):
        model = ContentionModel(front_end_sensitivity=10.0)
        assert model.effective(BALANCED, 16).front_end_bound <= 0.90

    def test_dram_bound_falls_with_threads(self):
        model = ContentionModel()
        values = [model.effective(MEMORY_BOUND, n).dram_bound for n in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_ipc_degrades(self):
        model = ContentionModel()
        assert model.effective(BALANCED, 8).ipc < BALANCED.ipc

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ContentionModel().effective(BALANCED, 0)

    def test_counters_scale_with_time(self):
        model = ContentionModel()
        c1 = model.counters_for(BALANCED, 1000.0)
        c2 = model.counters_for(BALANCED, 2000.0)
        for key in c1:
            assert c2[key] == pytest.approx(2 * c1[key])

    def test_counters_fields(self):
        counters = ContentionModel().counters_for(BALANCED, 1e6)
        assert counters["cpu_time_ns"] == 1e6
        assert counters["clockticks"] == pytest.approx(1e6 * 3.2)
        assert counters["instructions_retired"] > 0
        assert counters["uops_delivered"] < counters["uops_issued"]

    def test_uop_supply_falls_with_contention(self):
        model = ContentionModel()
        solo = model.counters_for(BALANCED, 1e6, active_threads=1)
        busy = model.counters_for(BALANCED, 1e6, active_threads=8)
        assert (
            busy["uops_delivered"] / busy["clockticks"]
            < solo["uops_delivered"] / solo["clockticks"]
        )
