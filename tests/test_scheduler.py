"""Scheduling layer (DESIGN.md §12): order book, stealing, autotuning.

Covers the ISSUE 10 acceptance grid: all three ``DataLoader(scheduler=)``
modes bit-identical to the static oracle across both worker backends,
both process transports, and all three cache modes; the ``sched`` trace
record round-trip through both analysis engines; claim accounting; and
the chaos scenario — killing a worker that holds stolen claims must
restart cleanly with zero lost or duplicated batches, zero /dev/shm
leaks, and sched records that reconcile steals across generations.
"""

import glob
import os
import time

import numpy as np
import pytest

from repro.core.lotustrace import (
    KIND_BATCH_TRANSPORT,
    KIND_BATCH_WAIT,
    KIND_CACHE_STATS,
    KIND_SCHED,
    MAIN_PROCESS_WORKER_ID,
    SCHED_STATIC,
    TraceColumns,
    TraceRecord,
    analyze_trace,
    format_cache_stats_name,
    format_sched_name,
    format_transport_name,
    parse_sched_name,
    parse_trace_file,
)
from repro.data import (
    DataLoader,
    DispatchOrderBook,
    FaultInjectingDataset,
    FaultPlan,
    FaultSite,
    IterableDataset,
    PrefetchController,
    StealingScheduler,
    TensorDataset,
)
from repro.data.dataset import BlobImageDataset, Dataset
from repro.data.scheduler import (
    SCHEDULER_CHOICES,
    scheduler_buffer_depth,
    scheduler_inflight_cap,
    validate_scheduler,
)
from repro.errors import DataLoaderError, TraceError
from repro.imaging.jpeg.codec import encode_sjpg
from repro.transforms import Compose, RandomResizedCrop, ToTensor
from tests.conftest import make_test_image

N_SAMPLES = 32
BATCH = 4
N_BATCHES = N_SAMPLES // BATCH
N_WORKERS = 4


def live_slab_segments():
    """§10 slab segments currently linked in /dev/shm for this process."""
    return sorted(
        os.path.basename(p)
        for p in glob.glob(f"/dev/shm/lt{os.getpid()}q*")
    )


class SkewedDataset(Dataset):
    """Index-keyed values with a heavy-tailed cost: every 4th batch
    sleeps long enough to force out-of-order arrival and real steals,
    while values stay a pure function of the index so every scheduler
    must produce identical bytes."""

    def __len__(self):
        return N_SAMPLES

    def __getitem__(self, index):
        if (index // BATCH) % 4 == 0:
            time.sleep(0.004)
        rng = np.random.default_rng(900 + index)
        return rng.standard_normal(8).astype(np.float32)


def _epoch_arrays(backend, scheduler, transport="auto", **kwargs):
    loader = DataLoader(
        SkewedDataset(),
        batch_size=BATCH,
        num_workers=N_WORKERS,
        prefetch_factor=2,
        worker_backend=backend,
        scheduler=scheduler,
        transport=transport,
        seed=3,
        **kwargs,
    )
    batches = [np.array(batch.numpy(), copy=True) for batch in loader]
    return batches, loader


# -- mode validation ----------------------------------------------------------


class TestValidateScheduler:
    def test_choices(self):
        for mode in SCHEDULER_CHOICES:
            assert validate_scheduler(mode, 2, False) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(DataLoaderError, match="unknown scheduler"):
            DataLoader(SkewedDataset(), num_workers=2, scheduler="rr")

    def test_stealing_needs_workers(self):
        with pytest.raises(DataLoaderError, match="num_workers"):
            DataLoader(SkewedDataset(), num_workers=0, scheduler="stealing")

    def test_stealing_needs_map_style(self):
        class Stream(IterableDataset):
            def __iter__(self):
                return iter([np.zeros(1, dtype=np.float32)])

        with pytest.raises(DataLoaderError, match="map-style"):
            DataLoader(Stream(), num_workers=2, scheduler="adaptive")

    def test_static_single_process_allowed(self):
        loader = DataLoader(SkewedDataset(), scheduler="static")
        assert loader.scheduler == SCHED_STATIC

    def test_depth_contracts(self):
        assert scheduler_inflight_cap(4, 2) == 16
        assert scheduler_buffer_depth(4, 2) == 18
        static = DataLoader(SkewedDataset(), num_workers=4, prefetch_factor=2)
        assert static.batch_buffer_depth == 4
        stealing = DataLoader(
            SkewedDataset(), num_workers=4, prefetch_factor=2,
            scheduler="stealing",
        )
        assert stealing.batch_buffer_depth == scheduler_buffer_depth(4, 2)


# -- DispatchOrderBook --------------------------------------------------------


class TestDispatchOrderBook:
    def make_book(self, batches=((0, 1), (2, 3), (4, 5))):
        return DispatchOrderBook(iter([list(b) for b in batches]))

    def test_draw_stamps_monotone_ids(self):
        book = self.make_book()
        drawn = [book.draw() for _ in range(3)]
        assert [batch_id for batch_id, _ in drawn] == [0, 1, 2]
        assert [indices for _, indices in drawn] == [[0, 1], [2, 3], [4, 5]]
        assert book.draw() is None
        assert book.exhausted
        assert book.inflight_count() == 3

    def test_requeue_wins_over_fresh_draws(self):
        book = self.make_book()
        book.draw()
        book.draw()
        book.requeue([1, 0])
        assert book.has_requeued()
        # Oldest first regardless of the order the sweep listed them.
        assert book.draw() == (0, [0, 1])
        assert book.draw() == (1, [2, 3])
        assert not book.has_requeued()
        assert book.draw() == (2, [4, 5])

    def test_requeue_unknown_batch_raises(self):
        book = self.make_book()
        with pytest.raises(DataLoaderError, match="unknown batch"):
            book.requeue([7])

    def test_complete_retires(self):
        book = self.make_book()
        book.draw()
        assert book.indices_for(0) == [0, 1]
        assert book.complete(0) == [0, 1]
        assert book.inflight_count() == 0
        # Ids the book never issued resolve to [] (iterable sentinels).
        assert book.complete(99) == []

    def test_has_ready(self):
        book = self.make_book(batches=((0,),))
        assert book.has_ready()
        book.draw()
        assert book.draw() is None
        assert not book.has_ready()
        book.requeue([0])
        assert book.has_ready()


# -- StealingScheduler --------------------------------------------------------


class TestStealingScheduler:
    def test_startup_fill_reproduces_round_robin(self):
        sched = StealingScheduler(4, 2)
        placed = []
        for batch_id in range(8):
            worker = sched.select_worker()
            sched.on_dispatch(worker, batch_id)
            placed.append(worker)
        assert placed == [0, 1, 2, 3, 0, 1, 2, 3]
        assert sched.steals == 0
        assert sched.select_worker() is None  # all claim slots full

    def test_steal_counting_and_delta(self):
        sched = StealingScheduler(4, 2)
        sched.on_dispatch(0, 0)  # home worker: not a steal
        sched.on_dispatch(0, 1)  # batch 1's home is worker 1: steal
        assert sched.steals == 1
        assert sched.take_steal_delta() == 1
        assert sched.take_steal_delta() == 0
        sched.on_dispatch(2, 7)
        assert sched.steals == 2

    def test_receipt_frees_slot_for_least_loaded(self):
        sched = StealingScheduler(2, 1)
        sched.on_dispatch(0, 0)
        sched.on_dispatch(1, 1)
        assert sched.select_worker() is None
        sched.on_receipt(1)
        assert sched.select_worker() == 1

    def test_worker_reset_clears_outstanding(self):
        sched = StealingScheduler(2, 1)
        sched.on_dispatch(0, 0)
        sched.on_dispatch(1, 1)
        sched.on_worker_reset(0)
        assert sched.outstanding(0) == 0
        assert sched.select_worker() == 0

    def test_adaptive_depth_follows_controller(self):
        controller = PrefetchController(2, 2)
        sched = StealingScheduler(2, 2, controller=controller)
        assert sched.chosen_depth == 2
        controller.depth = 4
        assert sched.chosen_depth == 4


# -- PrefetchController -------------------------------------------------------


def _wait(start_ns, duration_ns, ooo=False):
    return TraceRecord(
        kind=KIND_BATCH_WAIT, name="batch_wait", batch_id=0, worker_id=-1,
        pid=1, start_ns=start_ns, duration_ns=duration_ns, out_of_order=ooo,
    )


def _stats_record(kind, name):
    return TraceRecord(
        kind=kind, name=name, batch_id=0, worker_id=-1, pid=1,
        start_ns=0, duration_ns=0,
    )


class TestPrefetchController:
    def test_raises_depth_on_blocking_waits(self):
        ctl = PrefetchController(2, 2, adjust_interval=2)
        for i in range(4):
            ctl.observe(_wait(i * 1000, 900))  # ~90% blocking share
        assert ctl.on_yield() == 2  # first yield: interval not reached
        assert ctl.on_yield() == 3
        assert ctl.adjustments == 1

    def test_depth_capped_at_prefetch_plus_two(self):
        ctl = PrefetchController(2, 2, adjust_interval=2)
        for round_no in range(20):
            ctl.observe(_wait(round_no * 1000, 900))
            ctl.on_yield()
        assert ctl.depth == ctl.max_depth == 4

    def test_lowers_depth_when_waits_negligible_and_ooo(self):
        ctl = PrefetchController(2, 2, adjust_interval=2)
        for i in range(8):
            ctl.observe(_wait(i * 1_000_000, 1000, ooo=True))
        ctl.on_yield()
        assert ctl.on_yield() == 1
        assert ctl.depth == ctl.min_depth == 1
        for _ in range(8):  # floor holds
            ctl.on_yield()
        assert ctl.depth == 1

    def test_cold_cache_blocks_lowering(self):
        ctl = PrefetchController(2, 2, adjust_interval=2)
        for i in range(8):
            ctl.observe(_wait(i * 1_000_000, 1000, ooo=True))
        ctl.observe(_stats_record(
            KIND_CACHE_STATS, format_cache_stats_name("shared", 1, 9, 0, 0, 0)
        ))
        ctl.on_yield()
        assert ctl.on_yield() == 2  # hit rate 0.1 < 0.5: keep lookahead

    def test_memory_hint_blocks_raising(self):
        ctl = PrefetchController(
            2, 2, adjust_interval=2, memory_hint_bytes=1024
        )
        ctl.observe(_stats_record(
            KIND_BATCH_TRANSPORT, format_transport_name("shm", 4096, 0)
        ))
        for i in range(4):
            ctl.observe(_wait(i * 1000, 900))
        ctl.on_yield()
        assert ctl.on_yield() == 2
        assert ctl.adjustments == 0

    def test_no_records_keeps_depth_at_prefetch_factor(self):
        ctl = PrefetchController(4, 3)
        for _ in range(32):
            assert ctl.on_yield() == 3
        assert ctl.adjustments == 0


# -- parity: every mode is bit-identical to the static oracle -----------------


class TestSchedulerParity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("scheduler", ["stealing", "adaptive"])
    def test_modes_match_static_oracle(self, backend, scheduler):
        reference, _ = _epoch_arrays(backend, "static")
        candidate, _ = _epoch_arrays(backend, scheduler)
        assert len(candidate) == len(reference) == N_BATCHES
        for expected, got in zip(reference, candidate):
            np.testing.assert_array_equal(expected, got)

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_process_transports_match_oracle(self, transport):
        reference, _ = _epoch_arrays("process", "static", transport=transport)
        candidate, _ = _epoch_arrays("process", "stealing", transport=transport)
        for expected, got in zip(reference, candidate):
            np.testing.assert_array_equal(expected, got)
        assert live_slab_segments() == []


@pytest.fixture(scope="module")
def image_blobs():
    return [
        encode_sjpg(make_test_image(48, 48, seed=70 + i % 8), quality=85)
        for i in range(16)
    ]


class TestSchedulerCacheParity:
    """Stealing over the §11 decoded-sample caches must stay bit-exact:
    batch→RNG keying makes the transform stream independent of which
    worker (and which cache) serves a sample."""

    def run(self, blobs, scheduler, cache, backend="process"):
        dataset = BlobImageDataset(
            blobs,
            labels=list(range(len(blobs))),
            transform=Compose([RandomResizedCrop(32, seed=0), ToTensor()]),
        )
        loader = DataLoader(
            dataset, batch_size=BATCH, num_workers=2, worker_backend=backend,
            scheduler=scheduler, cache=cache, seed=0,
        )
        batches = [
            (images.numpy().copy(), labels.numpy().copy())
            for images, labels in loader
        ]
        loader.close()
        return batches

    @pytest.mark.parametrize("cache", [None, "private", "shared"])
    def test_cache_modes_match_oracle(self, image_blobs, cache):
        reference = self.run(image_blobs, "static", cache)
        candidate = self.run(image_blobs, "stealing", cache)
        assert len(candidate) == len(reference)
        for (img_a, lbl_a), (img_b, lbl_b) in zip(reference, candidate):
            np.testing.assert_array_equal(img_a, img_b)
            np.testing.assert_array_equal(lbl_a, lbl_b)

    def test_thread_shared_cache_matches_oracle(self, image_blobs):
        reference = self.run(image_blobs, "static", "shared", backend="thread")
        candidate = self.run(
            image_blobs, "adaptive", "shared", backend="thread"
        )
        for (img_a, _), (img_b, _) in zip(reference, candidate):
            np.testing.assert_array_equal(img_a, img_b)


# -- sched trace records ------------------------------------------------------


class TestSchedRecords:
    def run_logged(self, scheduler, tmp_path):
        log = str(tmp_path / f"{scheduler}.trace")
        loader = DataLoader(
            SkewedDataset(), batch_size=BATCH, num_workers=N_WORKERS,
            prefetch_factor=2, worker_backend="thread",
            scheduler=scheduler, seed=3, log_file=log,
        )
        iterator = iter(loader)
        count = sum(1 for _ in iterator)
        assert count == N_BATCHES
        loader.close()
        return parse_trace_file(log), iterator

    def test_static_emits_single_point_depth(self, tmp_path):
        records, _ = self.run_logged("static", tmp_path)
        sched = [r for r in records if r.kind == KIND_SCHED]
        assert len(sched) == N_BATCHES
        assert all(r.worker_id == MAIN_PROCESS_WORKER_ID for r in sched)
        assert all(r.duration_ns == 0 for r in sched)
        assert [r.batch_id for r in sched] == list(range(N_BATCHES))
        stats = analyze_trace(records).sched_stats()["static"]
        assert stats.batches == N_BATCHES
        assert stats.steals == 0
        assert (stats.min_chosen_depth, stats.max_chosen_depth) == (2, 2)

    def test_stealing_records_reconcile_with_dispatcher(self, tmp_path):
        records, iterator = self.run_logged("stealing", tmp_path)
        sched = [r for r in records if r.kind == KIND_SCHED]
        parsed = [parse_sched_name(r.name) for r in sched]
        assert all(mode == "stealing" for mode, *_rest in parsed)
        # Per-yield deltas sum to the dispatcher's lifetime steal count.
        assert sum(s for _, _, s, _ in parsed) == iterator._sched.steals
        assert all(0 <= q <= iterator._sched.max_inflight
                   for _, q, _, _ in parsed)

    def test_adaptive_depth_stays_in_bounds(self, tmp_path):
        records, _ = self.run_logged("adaptive", tmp_path)
        stats = analyze_trace(records).sched_stats()["adaptive"]
        assert stats.batches == N_BATCHES
        assert 1 <= stats.min_chosen_depth <= stats.max_chosen_depth <= 4

    def test_both_engines_agree(self, tmp_path):
        records, _ = self.run_logged("stealing", tmp_path)
        via_records = analyze_trace(records).sched_stats()
        via_columns = analyze_trace(
            TraceColumns.from_records(records)
        ).sched_stats()
        assert via_records == via_columns

    def test_malformed_sched_name_raises(self):
        with pytest.raises(TraceError, match="malformed sched"):
            parse_sched_name("stealing;q1;bogus;d2")
        mode, q, s, d = parse_sched_name(format_sched_name("adaptive", 5, 1, 3))
        assert (mode, q, s, d) == ("adaptive", 5, 1, 3)


# -- claim accounting ---------------------------------------------------------


class TestClaimAccounting:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_claims_confirmed_per_batch(self, backend):
        _, loader = _epoch_arrays(backend, "stealing")
        assert loader.fault_stats.claims_confirmed == N_BATCHES
        assert loader.fault_stats.stolen_claims_reclaimed == 0

    def test_static_emits_no_claims(self):
        _, loader = _epoch_arrays("process", "static")
        assert loader.fault_stats.claims_confirmed == 0


# -- chaos: killing a worker holding stolen claims ----------------------------


class TestSchedulerChaos:
    def test_crash_with_stolen_claims_recovers(self, tmp_path):
        log = str(tmp_path / "sched_chaos.trace")
        values = np.arange(N_SAMPLES, dtype=np.float32).reshape(N_SAMPLES, 1)
        plan = FaultPlan(
            seed=0, sites=(FaultSite(kind="crash", sample_index=9),)
        )
        loader = DataLoader(
            FaultInjectingDataset(TensorDataset(values), plan),
            batch_size=BATCH,
            num_workers=2,
            worker_backend="process",
            transport="shm",
            scheduler="stealing",
            seed=0,
            log_file=log,
            max_worker_restarts=2,
            hang_timeout_s=20.0,
            worker_timeout_s=30,
        )
        got = [batch[0].numpy().copy() for batch in loader]
        stats = loader.fault_stats
        assert stats.worker_restarts >= 1
        # The dead worker held in-flight batches; the sweep reclaimed
        # them into the order book for replay on the survivors. The
        # tally comes from the swept dispatch list, so it is exact even
        # when the crash loses the WorkerClaim confirmation in flight.
        assert stats.claims_confirmed >= N_BATCHES
        assert stats.stolen_claims_reclaimed >= 1
        # Zero lost or duplicated batches, bit-equal to a clean run.
        reference = [
            batch[0].numpy().copy()
            for batch in DataLoader(TensorDataset(values), batch_size=BATCH)
        ]
        assert len(got) == len(reference) == N_BATCHES
        for expected, actual in zip(reference, got):
            np.testing.assert_array_equal(expected, actual)
        assert live_slab_segments() == []
        # Sched records reconcile across worker generations: one record
        # per yielded batch, and the replayed batches landing off their
        # round-robin home show up in the steal total.
        analysis = analyze_trace(parse_trace_file(log))
        stats_by_mode = analysis.sched_stats()
        assert stats_by_mode["stealing"].batches == N_BATCHES
        assert stats_by_mode["stealing"].steals >= 1
        assert analysis.fault_counts().get("worker_restart", 0) >= 1
