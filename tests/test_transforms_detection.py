import numpy as np
import pytest

from repro.errors import ReproError
from repro.imaging.image import Image
from repro.tensor import Tensor
from repro.transforms import (
    DetNormalize,
    DetRandomHorizontalFlip,
    DetResize,
    DetToTensor,
)
from tests.conftest import make_test_image


def make_sample(height=60, width=80, boxes=None):
    image = Image(make_test_image(height, width))
    if boxes is None:
        boxes = np.array([[10.0, 10.0, 30.0, 40.0], [0.0, 0.0, 80.0, 60.0]])
    return image, {"boxes": boxes, "labels": np.array([1, 2])}


class TestDetResize:
    def test_image_and_boxes_scaled(self):
        image, target = make_sample(height=60, width=80)
        out_image, out_target = DetResize((40, 30))(
            (image, target)
        )  # halve both dims
        assert out_image.size == (40, 30)
        assert np.allclose(out_target["boxes"][0], [5.0, 5.0, 15.0, 20.0])

    def test_preserves_other_target_keys(self):
        image, target = make_sample()
        _, out_target = DetResize(32)((image, target))
        assert np.array_equal(out_target["labels"], target["labels"])

    def test_original_target_untouched(self):
        image, target = make_sample()
        original = target["boxes"].copy()
        DetResize(32)((image, target))
        assert np.array_equal(target["boxes"], original)

    def test_empty_boxes_ok(self):
        image, _ = make_sample()
        out_image, out_target = DetResize(32)((image, {"boxes": np.zeros((0, 4))}))
        assert out_target["boxes"].shape == (0, 4)

    def test_bad_boxes_shape(self):
        image, _ = make_sample()
        with pytest.raises(ReproError):
            DetResize(32)((image, {"boxes": np.zeros((3, 5))}))


class TestDetFlip:
    def test_boxes_mirrored(self):
        image, target = make_sample(width=80)
        _, out_target = DetRandomHorizontalFlip(p=1.0, seed=0)((image, target))
        # box [10, 10, 30, 40] mirrors to [80-30, 10, 80-10, 40]
        assert np.allclose(out_target["boxes"][0], [50.0, 10.0, 70.0, 40.0])

    def test_box_validity_preserved(self):
        image, target = make_sample()
        _, out_target = DetRandomHorizontalFlip(p=1.0, seed=1)((image, target))
        boxes = out_target["boxes"]
        assert (boxes[:, 2] >= boxes[:, 0]).all()

    def test_p_zero_identity(self):
        image, target = make_sample()
        out_image, out_target = DetRandomHorizontalFlip(p=0.0, seed=2)((image, target))
        assert out_image is image
        assert out_target is target

    def test_double_flip_restores(self):
        image, target = make_sample()
        flip = DetRandomHorizontalFlip(p=1.0, seed=3)
        _, once = flip((image, target))
        _, twice = flip((image, once))
        assert np.allclose(twice["boxes"], target["boxes"])


class TestDetTensorOps:
    def test_to_tensor_keeps_target(self):
        image, target = make_sample()
        tensor, out_target = DetToTensor()((image, target))
        assert isinstance(tensor, Tensor)
        assert out_target is target

    def test_normalize_keeps_target(self):
        image, target = make_sample()
        tensor, _ = DetToTensor()((image, target))
        out, out_target = DetNormalize([0.5] * 3, [0.2] * 3)((tensor, target))
        assert isinstance(out, Tensor)
        assert out_target is target
