"""Parity suite for the whole-batch SJPG decode engine (DESIGN.md §9).

The batch decoder is held to the same bar as the batched transform
engine: bitwise-identical pixels to N per-image ``decode_sjpg`` calls on
any mix of shapes, qualities, modes, and subsampling; identical errors
on corrupt input; and an equivalent [T3] Loader trace shape (one record
per batch carrying the real batch id instead of one per sample with the
-1 placeholder). The cache-aware bulk path on top of it must keep exact
hit/miss accounting, including under concurrency.
"""

import threading

import numpy as np
import pytest

from repro.core.lotustrace import (
    KIND_OP,
    InMemoryTraceLog,
    analysis_engine,
    analyze_trace,
)
from repro.data.cache import CachingLoader, materialize_decoded
from repro.data.dataset import LOADER_OP_NAME, BlobImageDataset, pil_loader
from repro.data.dataloader import DataLoader
from repro.datasets.synthetic import SizeDistribution, SyntheticImageNet
from repro.errors import CodecError, DataLoaderError
from repro.imaging.image import Image, load_rgb_batch
from repro.imaging.jpeg import codec, color, dct, entropy
from repro.transforms import Compose, Normalize, Resize, ToTensor
from tests.conftest import make_test_image


def encode(height, width, quality=85, subsample=True, seed=0):
    return codec.encode_sjpg(
        make_test_image(height, width, seed=seed),
        quality=quality,
        subsample=subsample,
    )


def assert_batch_matches_per_image(blobs):
    per_image = [codec.decode_sjpg(blob) for blob in blobs]
    batched = codec.decode_sjpg_batch(blobs)
    assert len(batched) == len(per_image)
    for reference, candidate in zip(per_image, batched):
        assert candidate.dtype == reference.dtype
        np.testing.assert_array_equal(candidate, reference)


class TestBatchDecodeParity:
    def test_homogeneous_group_bit_identical(self):
        blobs = [encode(40, 56, seed=i) for i in range(6)]
        assert_batch_matches_per_image(blobs)

    def test_mixed_quality_mode_shape_subsampling(self):
        # Crosses the FUSED_QUALITY_THRESHOLD both ways, mixes separate/
        # fused modes, subsampled and full-resolution chroma, and odd
        # dimensions that exercise the padding crop — the grouping must
        # keep every combination on its bit-identical path.
        blobs = [
            encode(32, 32, quality=55, seed=1),
            encode(32, 32, quality=95, seed=2),
            encode(33, 47, quality=85, seed=3),
            encode(33, 47, quality=85, seed=4),
            encode(64, 24, quality=70, subsample=False, seed=5),
            encode(16, 16, quality=60, seed=6),
            encode(32, 32, quality=55, seed=7),
        ]
        assert_batch_matches_per_image(blobs)

    def test_scalar_entropy_mode_parity(self):
        blobs = [encode(24, 24, seed=i) for i in range(4)]
        with entropy.entropy_mode("scalar"):
            assert_batch_matches_per_image(blobs)

    def test_singleton_and_empty_batches(self):
        assert_batch_matches_per_image([encode(20, 28, seed=9)])
        assert codec.decode_sjpg_batch([]) == []

    def test_each_output_owns_its_pixels(self):
        # The group decode stages through a reused arena slab; the
        # returned arrays must survive a subsequent batch decode.
        blobs = [encode(24, 24, seed=i) for i in range(3)]
        first = codec.decode_sjpg_batch(blobs)
        snapshots = [array.copy() for array in first]
        codec.decode_sjpg_batch([encode(24, 24, seed=99 + i) for i in range(3)])
        for array, snapshot in zip(first, snapshots):
            np.testing.assert_array_equal(array, snapshot)

    def test_truncated_blob_raises_same_error(self):
        good = [encode(24, 24, seed=i) for i in range(3)]
        truncated = good[1][:-8]
        with pytest.raises(CodecError) as per_image:
            codec.decode_sjpg(truncated)
        with pytest.raises(CodecError) as batched:
            codec.decode_sjpg_batch([good[0], truncated, good[2]])
        assert str(batched.value) == str(per_image.value)

    def test_trailing_garbage_raises_same_error(self):
        # Inflate the last plane's payload_len and append bytes: the
        # entropy layer's exact-consumption check must reject it on the
        # grouped path too, even when every blob in the group is bad.
        import struct

        blob = encode(24, 24, seed=8)
        offset = struct.calcsize("<4sBBBBII")
        for _ in range(3):
            ph, pw, plen = struct.unpack_from("<HHI", blob, offset)
            header_offset = offset
            offset += struct.calcsize("<HHI") + plen
        bad = bytearray(blob + b"\x00" * 9)
        struct.pack_into("<HHI", bad, header_offset, ph, pw, plen + 9)
        bad = bytes(bad)
        with pytest.raises(CodecError, match="trailing garbage") as per_image:
            codec.decode_sjpg(bad)
        for batch in ([encode(24, 24, seed=1), bad], [bad, bad]):
            with pytest.raises(CodecError, match="trailing garbage") as got:
                codec.decode_sjpg_batch(batch)
            assert str(got.value) == str(per_image.value)

    def test_bad_magic_blob_raises_same_error(self):
        good = encode(24, 24, seed=0)
        garbage = b"nope" + good[4:]
        with pytest.raises(CodecError) as per_image:
            codec.decode_sjpg(garbage)
        with pytest.raises(CodecError) as batched:
            codec.decode_sjpg_batch([good, garbage])
        assert str(batched.value) == str(per_image.value)


class TestPeekHeader:
    def test_valid_modes_accepted(self):
        separate = encode(24, 24, quality=55)  # below the fused threshold
        fused = encode(24, 24, quality=95)
        assert codec.peek_header(separate).mode == codec.MODE_SEPARATE_UPSAMPLE
        assert codec.peek_header(fused).mode == codec.MODE_FUSED_IDCT

    def test_unknown_mode_byte_rejected(self):
        blob = bytearray(encode(24, 24))
        blob[7] = 2  # mode byte: only 0 (separate) and 1 (fused) exist
        with pytest.raises(CodecError, match="unknown SJPG mode byte: 2"):
            codec.peek_header(bytes(blob))


class TestStackedKernels:
    def test_entropy_batch_matches_per_payload(self):
        rng = np.random.default_rng(5)
        payloads, counts = [], []
        for n_blocks in (1, 3, 7):
            blocks = rng.integers(-40, 40, size=(n_blocks, 8, 8)).astype(
                np.int16
            )
            payloads.append(entropy.encode_mcu_huff(blocks))
            counts.append(n_blocks)
        stacked = entropy.decode_mcu_batch(payloads, counts)
        reference = np.concatenate(
            [
                entropy.decode_mcu(payload, count)
                for payload, count in zip(payloads, counts)
            ]
        )
        np.testing.assert_array_equal(stacked, reference)

    def test_entropy_batch_rejects_corrupt_payload(self):
        blocks = np.zeros((2, 8, 8), dtype=np.int16)
        payload = entropy.encode_mcu_huff(blocks)
        with pytest.raises(CodecError):
            entropy.decode_mcu_batch([payload, payload[:-1]], [2, 2])

    def test_blocks_to_planes_matches_per_plane(self):
        rng = np.random.default_rng(6)
        blocks = rng.normal(size=(3 * 2 * 3, 8, 8))
        stacked = dct.blocks_to_planes(blocks, 3, 16, 24)
        for index in range(3):
            np.testing.assert_array_equal(
                stacked[index],
                dct.blocks_to_plane(blocks[index * 6 : (index + 1) * 6], 16, 24),
            )

    def test_blocks_to_planes_rejects_mismatched_tiling(self):
        with pytest.raises(ValueError):
            dct.blocks_to_planes(np.zeros((5, 8, 8)), 3, 16, 24)

    def test_repeat_quant_tables_broadcast_equivalence(self):
        rng = np.random.default_rng(7)
        luma = rng.integers(1, 50, size=(8, 8)).astype(np.float64)
        chroma = rng.integers(1, 50, size=(8, 8)).astype(np.float64)
        quantized = rng.integers(-30, 30, size=(5, 8, 8)).astype(np.int16)
        stacked_tables = dct.repeat_quant_tables((luma, chroma), (2, 3))
        assert stacked_tables.shape == (5, 8, 8)
        stacked = dct.dequantize_blocks(quantized, stacked_tables)
        reference = np.concatenate(
            [
                dct.dequantize_blocks(quantized[:2], luma),
                dct.dequantize_blocks(quantized[2:], chroma),
            ]
        )
        np.testing.assert_array_equal(stacked, reference)

    def test_ycc_convert_batched_matches_per_image(self):
        rng = np.random.default_rng(8)
        ycc = rng.uniform(-32, 287, size=(4, 10, 12, 3))
        stacked = color.ycc_rgb_convert(ycc)
        for index in range(4):
            np.testing.assert_array_equal(
                stacked[index], color.ycc_rgb_convert(ycc[index])
            )


class TestCachingLoaderBatch:
    def setup_method(self):
        self.blobs = [encode(24, 24, seed=20 + i) for i in range(6)]

    def test_cold_then_warm_accounting(self):
        cache = CachingLoader()
        cold = cache.load_batch(self.blobs)
        assert cache.stats() == (0, 6)
        warm = cache.load_batch(self.blobs)
        assert cache.stats() == (6, 6)
        for a, b in zip(cold, warm):
            assert a is b

    def test_batch_values_match_per_source_loader(self):
        batch = CachingLoader().load_batch(self.blobs)
        for blob, image in zip(self.blobs, batch):
            np.testing.assert_array_equal(
                image.to_array(), pil_loader(blob).to_array()
            )

    def test_partial_hit_decodes_only_misses(self):
        cache = CachingLoader()
        for blob in self.blobs[:2]:
            cache(blob)
        assert cache.stats() == (0, 2)
        cache.load_batch(self.blobs)
        assert cache.stats() == (2, 6)

    def test_duplicates_within_batch_decode_once(self):
        cache = CachingLoader()
        results = cache.load_batch([self.blobs[0], self.blobs[0], self.blobs[1]])
        assert cache.stats() == (1, 2)
        assert results[0] is results[1]

    def test_capacity_evicts_lru_across_batches(self):
        cache = CachingLoader(capacity=2)
        cache.load_batch(self.blobs[:3])
        assert cache.stats() == (0, 3)
        cache(self.blobs[0])  # evicted by the batch overflow: a miss
        assert cache.stats() == (0, 4)

    def test_hit_rate(self):
        cache = CachingLoader()
        cache.load_batch(self.blobs)
        cache.load_batch(self.blobs)
        assert cache.hit_rate == 0.5

    def test_single_flight_under_concurrency(self):
        decodes = []
        gate = threading.Event()

        def slow_loader(blob):
            decodes.append(blob)
            gate.wait(timeout=5.0)
            return pil_loader(blob)

        cache = CachingLoader(loader=slow_loader)
        results = {}

        def load(slot):
            results[slot] = cache(self.blobs[0])

        first = threading.Thread(target=load, args=("a",))
        first.start()
        while not decodes:  # first thread holds the in-flight claim
            pass
        second = threading.Thread(target=load, args=("b",))
        second.start()
        gate.set()
        first.join(timeout=5.0)
        second.join(timeout=5.0)
        assert len(decodes) == 1
        assert results["a"] is results["b"]
        assert cache.stats() == (1, 1)

    def test_failed_decode_releases_claim(self):
        attempts = []

        def flaky_loader(blob):
            attempts.append(blob)
            if len(attempts) == 1:
                raise CodecError("transient")
            return pil_loader(blob)

        cache = CachingLoader(loader=flaky_loader)
        with pytest.raises(CodecError):
            cache(self.blobs[0])
        image = cache(self.blobs[0])  # the claim must not be stuck
        assert len(attempts) == 2
        np.testing.assert_array_equal(
            image.to_array(), pil_loader(self.blobs[0]).to_array()
        )

    def test_batch_loader_failure_releases_claims(self):
        calls = []

        def flaky_batch(blobs):
            calls.append(len(blobs))
            if len(calls) == 1:
                raise CodecError("batch decode failed")
            return load_rgb_batch(blobs)

        cache = CachingLoader()
        cache._load_sources = flaky_batch
        with pytest.raises(CodecError):
            cache.load_batch(self.blobs)
        assert cache.stats() == (0, 0)
        # The claims were released, so a retry decodes every source.
        assert len(cache.load_batch(self.blobs)) == 6
        assert calls == [6, 6]
        assert cache.stats() == (0, 6)


class TestLoaderTraceParity:
    def run_epoch(self, batched):
        source = SyntheticImageNet(8, seed=3)
        log = InMemoryTraceLog()
        transform = Compose(
            [Resize(16), ToTensor(), Normalize((0.5,) * 3, (0.5,) * 3)],
            log_transform_elapsed_time=log,
        )
        dataset = BlobImageDataset(
            source.blobs,
            labels=source.labels,
            transform=transform,
            log_file=log,
        )
        loader = DataLoader(
            dataset, batch_size=4, log_file=log, batched_execution=batched
        )
        list(loader)
        return log.records()

    def test_batched_loader_records_carry_batch_id(self):
        records = self.run_epoch(batched=True)
        loads = [
            r for r in records if r.kind == KIND_OP and r.name == LOADER_OP_NAME
        ]
        assert [r.batch_id for r in loads] == [0, 1]

    def test_attribution_identical_across_analysis_engines(self):
        # Batched: one Loader op per batch with the id on the record.
        # Oracle: one per sample with -1, recovered by span containment.
        # Both analysis engines must agree on both shapes.
        for batched, expected in ((True, [0, 1]), (False, [0] * 4 + [1] * 4)):
            records = self.run_epoch(batched=batched)
            attributions = {}
            for engine in ("columnar", "records"):
                with analysis_engine(engine):
                    analysis = analyze_trace(records)
                    attributions[engine] = analysis.op_batch_ids[LOADER_OP_NAME]
            assert attributions["columnar"] == attributions["records"]
            assert sorted(attributions["columnar"]) == expected

    def test_custom_loader_keeps_per_sample_records(self):
        # A loader without a bulk form (e.g. grayscale) must keep the
        # per-sample Loader path even under the batched engine.
        source = SyntheticImageNet(4, seed=4)
        dataset = BlobImageDataset(
            source.blobs,
            loader=lambda blob: Image.open(blob).convert("L").convert("RGB"),
        )
        assert dataset.load_untransformed_batch([0, 1]) is None
        log = InMemoryTraceLog()
        logged = BlobImageDataset(
            source.blobs,
            loader=lambda blob: Image.open(blob).convert("L").convert("RGB"),
            log_file=log,
        )
        assert logged.load_untransformed_batch([0, 1, 2]) is None
        samples = [logged.load_untransformed(i) for i in range(4)]
        loads = [
            r
            for r in log.records()
            if r.kind == KIND_OP and r.name == LOADER_OP_NAME
        ]
        assert len(loads) == 4
        assert len(samples) == 4

    def test_caching_loader_joins_the_batched_path(self):
        source = SyntheticImageNet(4, seed=5)
        cache = CachingLoader()
        dataset = BlobImageDataset(source.blobs, loader=cache)
        samples = dataset.load_untransformed_batch([0, 1, 2, 3])
        assert samples is not None
        assert cache.stats() == (0, 4)
        again = dataset.load_untransformed_batch([0, 1, 2, 3])
        assert cache.stats() == (4, 4)
        for (image, _), (cached, _) in zip(samples, again):
            assert image is cached


class TestMaterializeDecoded:
    def test_matches_per_blob_loader(self):
        blobs = [encode(20, 24, seed=30 + i) for i in range(5)]
        arrays = materialize_decoded(blobs, batch_size=2)
        assert len(arrays) == 5
        for blob, array in zip(blobs, arrays):
            np.testing.assert_array_equal(array, pil_loader(blob).to_array())

    def test_invalid_batch_size(self):
        with pytest.raises(DataLoaderError):
            materialize_decoded([encode(16, 16)], batch_size=0)


class TestLoadRgbBatch:
    def test_matches_pil_loader_on_blobs(self):
        blobs = [encode(24, 40, seed=40 + i) for i in range(3)]
        for blob, image in zip(blobs, load_rgb_batch(blobs)):
            reference = pil_loader(blob)
            assert image.size == reference.size
            np.testing.assert_array_equal(
                image.to_array(), reference.to_array()
            )

    def test_reads_paths(self, tmp_path):
        blobs = [encode(16, 16, seed=50 + i) for i in range(2)]
        paths = []
        for index, blob in enumerate(blobs):
            path = tmp_path / f"img_{index}.sjpg"
            path.write_bytes(blob)
            paths.append(str(path))
        images = load_rgb_batch(paths)
        for blob, image in zip(blobs, images):
            np.testing.assert_array_equal(
                image.to_array(), pil_loader(blob).to_array()
            )

    def test_heterogeneous_with_size_distribution(self):
        ds = SyntheticImageNet(
            6,
            sizes=SizeDistribution(median_side=48, min_side=24, max_side=96),
            seed=6,
        )
        for blob, image in zip(ds.blobs, load_rgb_batch(list(ds.blobs))):
            np.testing.assert_array_equal(
                image.to_array(), pil_loader(blob).to_array()
            )
