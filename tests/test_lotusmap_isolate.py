import pytest

from repro.core.lotusmap.isolate import (
    IsolationConfig,
    OperationIsolator,
    capture_probability,
    required_runs,
)
from repro.errors import MappingError
from repro.hwprof import VTuneLikeProfiler
from repro.imaging.image import Image
from repro.imaging.jpeg.codec import encode_sjpg
from tests.conftest import make_test_image


class TestCaptureFormula:
    def test_paper_example(self):
        """f=660us, s=10ms, C=75% -> ~20 runs (paper rounds 20.3 down)."""
        runs = required_runs(660_000, 10_000_000, 0.75)
        assert runs in (20, 21)
        assert capture_probability(660_000, 10_000_000, runs) >= 0.75

    def test_probability_formula(self):
        # f = s: always captured.
        assert capture_probability(1000, 1000, 1) == pytest.approx(1.0)
        # f = s/2, one run: 50 %.
        assert capture_probability(500, 1000, 1) == pytest.approx(0.5)
        # two runs: 75 %.
        assert capture_probability(500, 1000, 2) == pytest.approx(0.75)

    def test_required_runs_monotone_in_confidence(self):
        low = required_runs(100, 1000, 0.5)
        high = required_runs(100, 1000, 0.99)
        assert high > low

    def test_required_runs_monotone_in_span(self):
        short = required_runs(10, 1000, 0.75)
        long = required_runs(500, 1000, 0.75)
        assert short > long

    def test_required_runs_satisfies_confidence(self):
        for f, s, c in [(100, 1000, 0.9), (50, 10_000, 0.75), (999, 1000, 0.5)]:
            n = required_runs(f, s, c)
            assert capture_probability(f, s, n) >= c
            if n > 1:
                assert capture_probability(f, s, n - 1) < c

    def test_validation(self):
        with pytest.raises(MappingError):
            required_runs(0, 1000, 0.75)
        with pytest.raises(MappingError):
            required_runs(2000, 1000, 0.75)  # f > s
        with pytest.raises(MappingError):
            required_runs(100, 1000, 1.0)
        with pytest.raises(MappingError):
            capture_probability(100, 1000, 0)


class TestIsolationConfig:
    def test_defaults(self):
        config = IsolationConfig()
        assert config.runs >= 1

    def test_validation(self):
        with pytest.raises(MappingError):
            IsolationConfig(runs=0)
        with pytest.raises(MappingError):
            IsolationConfig(warmup_iterations=-1)
        with pytest.raises(MappingError):
            IsolationConfig(gap_s=-0.1)


class TestOperationIsolator:
    @pytest.fixture(scope="class")
    def blob(self):
        return encode_sjpg(make_test_image(128, 128, seed=30), quality=85)

    def test_one_profile_per_run(self, blob):
        isolator = OperationIsolator(
            lambda: VTuneLikeProfiler(seed=0, sampling_interval_ns=100_000),
            IsolationConfig(runs=3, warmup_iterations=0, gap_s=0.0),
        )
        profiles = isolator.profile_operation(
            lambda: Image.open(blob), lambda image: image.convert("RGB")
        )
        assert len(profiles) == 3

    def test_collection_excludes_prelude(self, blob):
        """Prelude (decode) functions must not appear when the operation
        is a pure flip — the window opens only around the operation."""
        from repro.transforms import RandomHorizontalFlip

        decoded = Image.open(blob).convert("RGB")
        flip = RandomHorizontalFlip(p=1.0, seed=0)
        isolator = OperationIsolator(
            lambda: VTuneLikeProfiler(seed=1, sampling_interval_ns=20_000,
                                      skid_probability=0.0),
            IsolationConfig(runs=6, warmup_iterations=0, gap_s=0.002),
        )
        profiles = isolator.profile_operation(
            lambda: Image.open(blob).convert("RGB") and decoded, flip
        )
        sampled = {fn for p in profiles for fn in p.functions()}
        assert "decode_mcu" not in sampled

    def test_warmup_iterations_run(self, blob):
        calls = []

        def operation(value):
            calls.append(value)

        isolator = OperationIsolator(
            lambda: VTuneLikeProfiler(sampling_interval_ns=100_000),
            IsolationConfig(runs=2, warmup_iterations=3, gap_s=0.0),
        )
        isolator.profile_operation(lambda: 1, operation)
        assert len(calls) == 2 * 4  # (warmups + collected) per run
