import math

import numpy as np
import pytest

from repro.utils.stats import Summary, fraction_below, iqr, percentile, summarize


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 90) == 5.0

    def test_median_of_even_count_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        values = [3, 1, 4, 1, 5]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 5

    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=101).tolist()
        for q in (10, 25, 50, 75, 90, 99):
            assert percentile(values, q) == pytest.approx(np.percentile(values, q))

    def test_unsorted_input(self):
        assert percentile([9, 1, 5], 50) == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([1], -1)


class TestIqrAndFractions:
    def test_iqr(self):
        values = list(range(1, 101))
        assert iqr(values) == pytest.approx(
            np.percentile(values, 75) - np.percentile(values, 25)
        )

    def test_fraction_below_strict(self):
        assert fraction_below([1, 2, 3, 4], 3) == 0.5  # 1, 2 below

    def test_fraction_below_all(self):
        assert fraction_below([1, 2], 10) == 1.0

    def test_fraction_below_none(self):
        assert fraction_below([5, 6], 1) == 0.0

    def test_fraction_below_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_below([], 1)


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == 2.5

    def test_std_population(self):
        s = summarize([2.0, 4.0])
        assert s.std == pytest.approx(1.0)

    def test_iqr_property(self):
        s = summarize(list(range(100)))
        assert s.iqr == pytest.approx(s.p75 - s.p25)

    def test_std_pct_of_mean(self):
        s = summarize([2.0, 4.0])
        assert s.std_pct_of_mean == pytest.approx(100.0 / 3.0)

    def test_std_pct_zero_mean(self):
        s = summarize([0.0, 0.0])
        assert s.std_pct_of_mean == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_p90_ordering(self):
        s = summarize(list(range(1000)))
        assert s.p25 < s.median < s.p75 < s.p90 < s.p99 <= s.maximum
