"""The deferred AMD analysis (extension experiment)."""

import pytest

from repro.experiments.ext_amd_analysis import (
    format_amd_analysis,
    run_amd_analysis,
)
from repro.workloads import SMOKE


@pytest.fixture(scope="module")
def result():
    # A 1-vs-8 worker contrast with 72 images: the contention trends in
    # the counter mix need both a wide concurrency spread and an epoch
    # long enough to keep all workers overlapped (the vectorized decoder
    # finishes small epochs before contention builds).
    return run_amd_analysis(
        profile=SMOKE, worker_counts=(1, 8), images=72, mapping_runs=6, seed=2
    )


class TestAmdAnalysis:
    def test_amd_only_symbols_present(self, result):
        assert result.amd_only_symbols & {
            "sep_upsample", "copy", "process_data_simple_main",
            "__memset_avx2_unaligned", "precompute_coeffs", "ImagingCrop",
        }

    def test_finer_driver_resolves_more_functions(self, result):
        """uProf samples at 1 ms vs VTune's 10 ms (scaled 10:1 here), so a
        single isolation run captures more of the operation's symbols."""
        assert result.functions_per_run_amd > result.functions_per_run_intel

    def test_memset_reported_under_amd_name(self, result):
        loader_fns = result.mapping.function_names_for("Loader")
        assert "__memset_avx2_unaligned_erms" not in loader_fns
        # The AMD alias may or may not be sampled; if present it carries
        # the AMD library name.
        for entry in result.mapping.functions_for("Loader"):
            if entry.function == "__memset_avx2_unaligned":
                assert entry.library == "libc-2.31.so"

    def test_contention_trends_reproduce_on_amd(self, result):
        fe = result.front_end_bound_series("Loader")
        dram = result.dram_bound_series("Loader")
        assert fe[-1] > fe[0]
        assert dram[-1] < dram[0]

    def test_formatting(self, result):
        text = format_amd_analysis(result)
        assert "AMD" in text and "FE bound" in text
