"""Columnar engine vs record oracle: exhaustive parity checks.

The columnar trace engine (parse → analyze → report → export) must be
observationally identical to the record-list path it replaced; the
record path survives behind ``analysis_engine("records")`` precisely so
these tests can hold the two implementations against each other on
traces with multiple workers, out-of-order arrivals, duplicate batch
ids (multi-epoch logs), orphan ops, and degenerate inputs.
"""

import json
import random

import pytest

from repro.core.lotustrace.analysis import analyze_trace, out_of_order_events
from repro.core.lotustrace.autoreport import generate_report
from repro.core.lotustrace.chrometrace import to_chrome_trace
from repro.core.lotustrace.columns import TraceColumns, parse_trace_file_columns
from repro.core.lotustrace.compare import compare_traces
from repro.core.lotustrace.engine import analysis_engine, current_engine
from repro.core.lotustrace.logfile import parse_trace_file
from repro.core.lotustrace.records import (
    KIND_BATCH_CONSUMED,
    KIND_BATCH_PREPROCESSED,
    KIND_BATCH_WAIT,
    KIND_OP,
    MAIN_PROCESS_WORKER_ID,
    OOO_MARKER_DURATION_NS,
    TraceRecord,
)

US = 1_000


def synthetic_trace(
    n_batches=40,
    n_workers=3,
    seed=0,
    ooo_fraction=0.3,
    with_orphans=True,
    shuffle=True,
):
    """A randomized but seeded multi-worker trace with per-op records."""
    rng = random.Random(seed)
    records = []
    clock = 0
    for batch in range(n_batches):
        worker = batch % n_workers
        start = clock + rng.randrange(0, 900 * US)
        op_clock = start
        for name in ("Loader", "RandomResizedCrop", "Normalize"):
            duration = rng.randrange(50 * US, 900 * US)
            records.append(
                TraceRecord(
                    kind=KIND_OP, name=name, batch_id=-1, worker_id=worker,
                    pid=100 + worker, start_ns=op_clock, duration_ns=duration,
                )
            )
            op_clock += duration
        # Collation carries its batch id (emitted inside batch_scope).
        records.append(
            TraceRecord(
                kind=KIND_OP, name="Collation", batch_id=batch,
                worker_id=worker, pid=100 + worker, start_ns=op_clock,
                duration_ns=rng.randrange(1 * US, 20 * US),
            )
        )
        fetch_duration = (op_clock - start) + rng.randrange(30 * US, 200 * US)
        records.append(
            TraceRecord(
                kind=KIND_BATCH_PREPROCESSED, name="fetch", batch_id=batch,
                worker_id=worker, pid=100 + worker, start_ns=start,
                duration_ns=fetch_duration,
            )
        )
        out_of_order = rng.random() < ooo_fraction
        wait_start = start + fetch_duration + rng.randrange(0, 50 * US)
        records.append(
            TraceRecord(
                kind=KIND_BATCH_WAIT, name="wait", batch_id=batch,
                worker_id=MAIN_PROCESS_WORKER_ID, pid=1, start_ns=wait_start,
                duration_ns=(
                    OOO_MARKER_DURATION_NS
                    if out_of_order
                    else rng.randrange(1 * US, 400 * US)
                ),
                out_of_order=out_of_order,
            )
        )
        records.append(
            TraceRecord(
                kind=KIND_BATCH_CONSUMED, name="consume", batch_id=batch,
                worker_id=MAIN_PROCESS_WORKER_ID, pid=1,
                start_ns=wait_start + rng.randrange(1 * US, 300 * US),
                duration_ns=rng.randrange(1 * US, 40 * US),
            )
        )
        clock += rng.randrange(100 * US, 1000 * US)
    if with_orphans:
        # An op on a worker with no fetch span, and one far outside any
        # span on a known worker: both must attribute to batch -1.
        records.append(
            TraceRecord(
                kind=KIND_OP, name="Orphan", batch_id=-1, worker_id=97,
                pid=999, start_ns=5 * US, duration_ns=2 * US,
            )
        )
        records.append(
            TraceRecord(
                kind=KIND_OP, name="Loader", batch_id=-1, worker_id=0,
                pid=100, start_ns=clock + 10_000 * US, duration_ns=US,
            )
        )
    if shuffle:
        rng.shuffle(records)  # log lines arrive interleaved across tracks
    return records


def oracle_analysis(records):
    with analysis_engine("records"):
        return analyze_trace(list(records))


def assert_analysis_parity(records):
    """Every public surface of the two engines must agree exactly."""
    assert current_engine() == "columnar"
    columnar = analyze_trace(TraceColumns.from_records(records))
    oracle = oracle_analysis(records)

    assert columnar.num_batches() == oracle.num_batches()
    assert columnar.batches == oracle.batches
    assert columnar.op_durations == oracle.op_durations
    assert columnar.op_batch_ids == oracle.op_batch_ids
    assert columnar.op_names() == oracle.op_names()
    assert columnar.op_total_cpu_ns() == oracle.op_total_cpu_ns()
    assert columnar.total_preprocess_cpu_ns() == oracle.total_preprocess_cpu_ns()
    assert columnar.preprocess_times_ns() == oracle.preprocess_times_ns()
    assert columnar.wait_times_ns() == oracle.wait_times_ns()
    assert columnar.delay_times_ns() == oracle.delay_times_ns()
    assert out_of_order_events(columnar) == out_of_order_events(oracle)
    if columnar.preprocess_times_ns():
        assert columnar.preprocess_summary() == oracle.preprocess_summary()
    for name in oracle.op_names():
        assert columnar.op_summary(name) == oracle.op_summary(name)
    if columnar.wait_times_ns():
        for threshold in (0, 100 * US, 10_000 * US):
            assert columnar.fraction_waits_over(
                threshold
            ) == oracle.fraction_waits_over(threshold)
    return columnar, oracle


class TestAnalysisParity:
    def test_multi_worker(self):
        assert_analysis_parity(synthetic_trace(seed=1))

    def test_single_worker_in_order(self):
        assert_analysis_parity(
            synthetic_trace(
                n_workers=1, ooo_fraction=0.0, seed=2, shuffle=False
            )
        )

    def test_every_batch_out_of_order(self):
        assert_analysis_parity(synthetic_trace(ooo_fraction=1.0, seed=3))

    def test_multi_epoch_duplicate_batch_ids(self):
        # Two epochs in one log reuse batch ids 0..n; the engines must
        # agree on last-record-wins per (batch, kind).
        epoch_a = synthetic_trace(n_batches=15, seed=4, shuffle=False)
        epoch_b = synthetic_trace(n_batches=15, seed=5, shuffle=False)
        assert_analysis_parity(epoch_a + epoch_b)

    def test_empty_trace(self):
        columnar, oracle = assert_analysis_parity([])
        assert columnar.num_batches() == 0 == oracle.num_batches()

    def test_ops_only(self):
        records = [
            TraceRecord(
                kind=KIND_OP, name="Loader", batch_id=-1, worker_id=0,
                pid=1, start_ns=10, duration_ns=5,
            )
        ]
        columnar, oracle = assert_analysis_parity(records)
        assert columnar.op_batch_ids == {"Loader": [-1]} == oracle.op_batch_ids

    def test_batch_records_only(self):
        records = [
            TraceRecord(
                kind=KIND_BATCH_WAIT, name="wait", batch_id=0,
                worker_id=MAIN_PROCESS_WORKER_ID, pid=1, start_ns=10,
                duration_ns=5,
            )
        ]
        assert_analysis_parity(records)

    def test_identical_timestamps(self):
        # Several spans and ops sharing one start time exercise the
        # stable tie-breaks in both engines.
        records = []
        for batch in range(4):
            records.append(
                TraceRecord(
                    kind=KIND_BATCH_PREPROCESSED, name="fetch",
                    batch_id=batch, worker_id=0, pid=1, start_ns=100,
                    duration_ns=50,
                )
            )
            records.append(
                TraceRecord(
                    kind=KIND_OP, name="Op", batch_id=-1, worker_id=0,
                    pid=1, start_ns=100, duration_ns=50,
                )
            )
        assert_analysis_parity(records)


class TestChromeTraceParity:
    @pytest.mark.parametrize("coarse", [False, True])
    def test_byte_identical_json(self, coarse):
        records = synthetic_trace(seed=7)
        cols = TraceColumns.from_records(records)
        columnar = json.dumps(to_chrome_trace(cols, coarse=coarse))
        with analysis_engine("records"):
            oracle = json.dumps(to_chrome_trace(records, coarse=coarse))
        assert columnar == oracle

    def test_byte_identical_with_custom_start_id(self):
        records = synthetic_trace(n_batches=8, seed=8)
        columnar = json.dumps(
            to_chrome_trace(TraceColumns.from_records(records), start_id=-500)
        )
        with analysis_engine("records"):
            oracle = json.dumps(to_chrome_trace(records, start_id=-500))
        assert columnar == oracle

    def test_record_input_uses_columnar_emitter(self):
        # Same JSON whether the caller hands records or columns.
        records = synthetic_trace(n_batches=8, seed=9)
        by_records = json.dumps(to_chrome_trace(records))
        by_columns = json.dumps(
            to_chrome_trace(TraceColumns.from_records(records))
        )
        assert by_records == by_columns


class TestReportAndCompareParity:
    def test_report_identical(self):
        records = synthetic_trace(seed=10)
        cols = TraceColumns.from_records(records)
        columnar = generate_report(cols).format()
        with analysis_engine("records"):
            oracle = generate_report(records).format()
        assert columnar == oracle

    def test_compare_identical(self):
        base = synthetic_trace(seed=11)
        cand = synthetic_trace(seed=12)
        columnar = compare_traces(
            TraceColumns.from_records(base), TraceColumns.from_records(cand)
        ).format()
        with analysis_engine("records"):
            oracle = compare_traces(base, cand).format()
        assert columnar == oracle


class TestFileRoundTripParity:
    def test_parse_engines_agree(self, tmp_path):
        records = synthetic_trace(seed=13)
        path = tmp_path / "trace.log"
        path.write_text("".join(r.to_line() + "\n" for r in records))
        cols = parse_trace_file_columns(path)
        with analysis_engine("records"):
            oracle_records = parse_trace_file(path)
        assert cols.to_records() == oracle_records
        assert_analysis_parity(oracle_records)

    def test_to_records_round_trip(self):
        records = synthetic_trace(n_batches=10, seed=14)
        assert TraceColumns.from_records(records).to_records() == records
