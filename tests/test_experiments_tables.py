"""Shape assertions for the reproduced tables (I-IV).

Absolute numbers differ from the paper (simulated substrate); the
assertions target the qualitative claims each table supports.
"""

import pytest

from repro.experiments.table1_mapping import format_table1, run_table1
from repro.experiments.table2_op_times import format_table2, run_table2
from repro.experiments.table3_overhead import format_table3, run_table3
from repro.experiments.table4_functionality import format_table4, run_table4
from repro.workloads import SMOKE


@pytest.fixture(scope="module")
def table1():
    return run_table1(runs=12, seed=0)


class TestTable1:
    def test_loader_maps_to_decode_chain(self, table1):
        functions = table1.intel.function_names_for("Loader")
        for expected in ("decode_mcu", "jpeg_idct_islow", "ycc_rgb_convert",
                         "decompress_onepass"):
            assert expected in functions

    def test_rrc_maps_to_resample_kernels(self, table1):
        functions = table1.intel.function_names_for("RandomResizedCrop")
        assert "ImagingResampleHorizontal_8bpc" in functions
        assert "ImagingResampleVertical_8bpc" in functions

    def test_rrc_does_not_contain_decode(self, table1):
        assert "decode_mcu" not in table1.intel.function_names_for("RandomResizedCrop")

    def test_intel_specific_rows(self, table1):
        intel_only = table1.intel_specific("Loader")
        if "__libc_calloc" not in intel_only:
            # The calloc span sits near the scaled sampling interval, so
            # capture is probabilistic (exactly the paper's point); retry
            # once with the formula-derived higher run count.
            retry = run_table1(runs=20, seed=3)
            intel_only = retry.intel_specific("Loader")
        assert "__libc_calloc" in intel_only

    def test_amd_specific_rows(self, table1):
        amd_only = set()
        for op in ("Loader",):
            amd_only |= table1.amd_specific(op)
        # At least one of the Table I AMD rows shows up.
        assert amd_only & {"sep_upsample", "copy", "process_data_simple_main",
                           "__memset_avx2_unaligned"}

    def test_common_rows_exist(self, table1):
        assert "decode_mcu" in table1.common_functions("Loader")

    def test_every_ic_op_mapped(self, table1):
        for op in ("Loader", "RandomResizedCrop", "RandomHorizontalFlip",
                   "ToTensor", "Normalize", "Collation"):
            assert op in table1.intel
            assert table1.intel.function_names_for(op)

    def test_short_op_capture(self, table1):
        """Short-lived ToTensor must still be mapped (repeat-run capture)."""
        assert table1.intel.function_names_for("ToTensor")

    def test_formatting(self, table1):
        text = format_table1(table1)
        assert "Loader" in text and "RandomResizedCrop" in text


@pytest.fixture(scope="module")
def table2():
    return run_table2(profile=SMOKE, num_workers=2, seed=1)


class TestTable2:
    def test_all_pipelines_present(self, table2):
        assert set(table2.pipelines) == {"IC", "IS", "OD"}

    def test_ic_op_set(self, table2):
        ops = {row.op for row in table2.pipelines["IC"]}
        assert ops == {"Loader", "RandomResizedCrop", "RandomHorizontalFlip",
                       "ToTensor", "Normalize", "Collation"}

    def test_is_op_set(self, table2):
        ops = {row.op for row in table2.pipelines["IS"]}
        assert {"Loader", "RandBalancedCrop", "RandomFlip", "Cast",
                "RandomBrightnessAugmentation", "GaussianNoise", "Collation"} <= ops

    def test_ic_loader_dominates(self, table2):
        """Paper: Loader is IC's most expensive op, then RRC."""
        rows = {row.op: row for row in table2.pipelines["IC"]}
        assert rows["Loader"].avg_ms > rows["RandomResizedCrop"].avg_ms
        assert rows["RandomResizedCrop"].avg_ms > rows["RandomHorizontalFlip"].avg_ms

    def test_rhf_mostly_sub_100us(self, table2):
        """Paper: 98.3% of IC RandomHorizontalFlip runs are under 100us."""
        rows = {row.op: row for row in table2.pipelines["IC"]}
        assert rows["RandomHorizontalFlip"].pct_under_100us > 50.0

    def test_sub_10ms_ops_everywhere(self, table2):
        """Takeaway 1: every pipeline has ops that sampling at 10 ms would
        miss."""
        for rows in table2.pipelines.values():
            assert any(row.pct_under_10ms > 90.0 for row in rows)

    def test_sub_100us_ops_exist(self, table2):
        for rows in table2.pipelines.values():
            assert any(row.pct_under_100us > 50.0 for row in rows)

    def test_p90_at_least_avg_for_skewed_ops(self, table2):
        rows = {row.op: row for row in table2.pipelines["IC"]}
        assert rows["Loader"].p90_ms > 0

    def test_formatting(self, table2):
        text = format_table2(table2)
        assert "IC" in text and "Loader" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def table3(self, tmp_path_factory):
        log_dir = str(tmp_path_factory.mktemp("t3logs"))
        return run_table3(profile=SMOKE, seed=2, log_dir=log_dir)

    def test_all_profilers_measured(self, table3):
        names = {row.profiler for row in table3.rows}
        assert names == {"lotus", "scalene-like", "py-spy-like", "austin-like",
                         "torch-profiler-like"}

    def test_lotus_lowest_overhead_of_heavy_tools(self, table3):
        """Paper: ~0-2% for LotusTrace. Absolute numbers are noise on a
        loaded single core (the bench measures them unloaded), so the
        test asserts the ordering that Table III establishes."""
        small = [row for row in table3.rows if row.dataset == "imagenet-small"]
        lotus = next(row for row in small if row.profiler == "lotus")
        heavy = {
            row.profiler: row.wall_overhead_pct
            for row in small
            if row.profiler in ("scalene-like", "austin-like", "torch-profiler-like")
        }
        assert all(lotus.wall_overhead_pct < value for value in heavy.values())

    def test_scalene_heaviest(self, table3):
        small = [row for row in table3.rows if row.dataset == "imagenet-small"]
        scalene = next(row for row in small if row.profiler == "scalene-like")
        assert scalene.wall_overhead_pct == max(r.wall_overhead_pct for r in small)

    def test_austin_storage_dominates(self, table3):
        small = {row.profiler: row for row in table3.rows if row.dataset == "imagenet-small"}
        assert small["austin-like"].log_bytes > 10 * small["lotus"].log_bytes

    def test_torch_profiler_oom_on_full(self, table3):
        oom_row = next(
            row for row in table3.rows
            if row.profiler == "torch-profiler-like" and row.dataset == "imagenet-full"
        )
        assert oom_row.oom

    def test_formatting(self, table3):
        text = format_table3(table3)
        assert "OOM" in text and "lotus" in text


class TestTable4:
    @pytest.fixture(scope="class")
    def table4(self, tmp_path_factory):
        return run_table4(
            profile=SMOKE, seed=3, log_dir=str(tmp_path_factory.mktemp("t4logs"))
        )

    def test_matches_paper_matrix(self, table4):
        expected = {
            "lotus": dict(Epoch=True, Batch=True, Async=True, Wait=True, Delay=True),
            "scalene-like": dict(Epoch=False, Batch=False, Async=False,
                                 Wait=False, Delay=False),
            "py-spy-like": dict(Epoch=True, Batch=False, Async=False,
                                Wait=False, Delay=False),
            "austin-like": dict(Epoch=True, Batch=False, Async=False,
                                Wait=False, Delay=False),
            "torch-profiler-like": dict(Epoch=False, Batch=False, Async=False,
                                        Wait=True, Delay=False),
        }
        for profiler, columns in expected.items():
            for column, value in columns.items():
                assert table4.supports(profiler, column) == value, (profiler, column)

    def test_lotus_uniquely_complete(self, table4):
        complete = [
            row.profiler for row in table4.rows if all(row.supports.values())
        ]
        assert complete == ["lotus"]

    def test_formatting(self, table4):
        assert "lotus" in format_table4(table4)
