import numpy as np

from repro.utils.rng import derive_rng, spawn_seed


class TestDeriveRng:
    def test_same_seed_same_stream(self):
        a = derive_rng(42, "x")
        b = derive_rng(42, "x")
        assert a.integers(0, 1 << 60) == b.integers(0, 1 << 60)

    def test_different_context_different_stream(self):
        a = derive_rng(42, "worker", 0)
        b = derive_rng(42, "worker", 1)
        draws_a = a.integers(0, 1 << 60, size=8)
        draws_b = b.integers(0, 1 << 60, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_different_seed_different_stream(self):
        a = derive_rng(1, "x")
        b = derive_rng(2, "x")
        assert a.integers(0, 1 << 60) != b.integers(0, 1 << 60)

    def test_generator_passthrough_without_context(self):
        gen = np.random.default_rng(0)
        assert derive_rng(gen) is gen

    def test_generator_with_context_derives_child(self):
        gen = np.random.default_rng(0)
        child = derive_rng(gen, "c")
        assert child is not gen

    def test_none_seed_is_deterministic_zero(self):
        a = derive_rng(None, "k")
        b = derive_rng(None, "k")
        assert a.integers(0, 1 << 60) == b.integers(0, 1 << 60)


class TestSpawnSeed:
    def test_range(self):
        rng = np.random.default_rng(3)
        for _ in range(100):
            seed = spawn_seed(rng)
            assert 0 <= seed < 2**63

    def test_deterministic(self):
        assert spawn_seed(np.random.default_rng(5)) == spawn_seed(
            np.random.default_rng(5)
        )
