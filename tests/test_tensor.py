import numpy as np
import pytest

from repro.errors import ReproError
from repro.tensor import Tensor, from_numpy, stack


class TestTensorBasics:
    def test_wraps_without_copy(self):
        array = np.arange(6).reshape(2, 3)
        tensor = from_numpy(array)
        assert tensor.numpy() is array

    def test_shape_dtype_ndim(self):
        tensor = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert tensor.shape == (2, 3, 4)
        assert tensor.dtype == np.float32
        assert tensor.ndim == 3
        assert len(tensor) == 2

    def test_requires_ndarray(self):
        with pytest.raises(ReproError):
            Tensor([1, 2, 3])

    def test_repr(self):
        text = repr(Tensor(np.zeros(3)).pin_memory())
        assert "pinned" in text and "cpu" in text


class TestPinning:
    def test_pin_copies(self):
        array = np.zeros(4)
        pinned = Tensor(array).pin_memory()
        assert pinned.pinned
        pinned.numpy()[0] = 9
        assert array[0] == 0

    def test_pin_idempotent(self):
        pinned = Tensor(np.zeros(4)).pin_memory()
        assert pinned.pin_memory() is pinned


class TestDevice:
    def test_to_device_retags(self):
        tensor = Tensor(np.zeros(2))
        moved = tensor.to("gpu:0")
        assert moved.device == "gpu:0"
        assert tensor.device == "cpu"

    def test_to_same_device_identity(self):
        tensor = Tensor(np.zeros(2))
        assert tensor.to("cpu") is tensor

    def test_numpy_on_gpu_raises(self):
        with pytest.raises(ReproError):
            Tensor(np.zeros(2)).to("gpu:1").numpy()


class TestArithmetic:
    def test_scalar_ops(self):
        tensor = Tensor(np.array([2.0, 4.0]))
        assert np.array_equal((tensor + 1).numpy(), [3.0, 5.0])
        assert np.array_equal((tensor - 1).numpy(), [1.0, 3.0])
        assert np.array_equal((tensor * 2).numpy(), [4.0, 8.0])
        assert np.array_equal((tensor / 2).numpy(), [1.0, 2.0])

    def test_tensor_ops_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3, dtype=float))
        assert (a + b).shape == (2, 3)

    def test_astype(self):
        assert Tensor(np.zeros(2, dtype=np.uint8)).astype(np.float32).dtype == np.float32

    def test_allclose(self):
        a = Tensor(np.array([1.0]))
        b = Tensor(np.array([1.0 + 1e-12]))
        assert a.allclose(b)


class TestStack:
    def test_stack_shape(self):
        tensors = [Tensor(np.full((2, 2), i, dtype=float)) for i in range(3)]
        stacked = stack(tensors)
        assert stacked.shape == (3, 2, 2)
        assert stacked.numpy()[2, 0, 0] == 2

    def test_stack_empty_raises(self):
        with pytest.raises(ReproError):
            stack([])

    def test_contiguous(self):
        view = np.arange(12).reshape(3, 4)[:, ::2]
        out = Tensor(view).contiguous()
        assert out.numpy().flags["C_CONTIGUOUS"]
