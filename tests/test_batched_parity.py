"""Parity suite for the batched preprocessing fast path (DESIGN.md §7).

The batched engine is held to three contracts against the per-sample
oracle: bit-identical pixels, identical RNG draw order, and equivalent
[T3] trace structure (one record per transform per batch instead of one
per sample). Chains or samples the batch engine cannot represent must
fall back to the per-sample path with unchanged results.
"""

import numpy as np
import pytest

from repro.core.lotustrace import InMemoryTraceLog, KIND_OP
from repro.core.lotustrace.records import COLLATION_OP_NAME
from repro.clib.events import EventRecorder, attach_recorder, detach_recorder
from repro.data.dataloader import DataLoader
from repro.data.dataset import LOADER_OP_NAME, BlobImageDataset
from repro.data.fetcher import _MapDatasetFetcher, create_fetcher
from repro.datasets.synthetic import SyntheticImageNet
from repro.errors import ReproError
from repro.imaging.image import Image
from repro.tensor.batchbuffer import BatchBuffer
from repro.tensor.collate import default_collate
from repro.transforms import (
    BatchCompose,
    Compose,
    Grayscale,
    ImageBatch,
    Lambda,
    Normalize,
    RandomHorizontalFlip,
    RandomResizedCrop,
    Resize,
    ToTensor,
    batch_engine,
    current_batch_engine,
)
from tests.conftest import make_test_image

MEAN = (0.485, 0.456, 0.406)
STD = (0.229, 0.224, 0.225)


def ic_transform(seed, log_file=None):
    """The paper's Listing 1 chain, freshly seeded."""
    return Compose(
        [
            RandomResizedCrop(32, seed=seed),
            RandomHorizontalFlip(seed=seed + 1),
            ToTensor(),
            Normalize(MEAN, STD),
        ],
        log_transform_elapsed_time=log_file,
    )


def det_transform(log_file=None):
    """RNG-free chain: safe for cross-thread parity checks."""
    return Compose(
        [Resize(24), ToTensor(), Normalize(MEAN, STD)],
        log_transform_elapsed_time=log_file,
    )


def make_loader(
    transform,
    n_images=8,
    batch_size=4,
    seed=0,
    log_file=None,
    **loader_kwargs,
):
    source = SyntheticImageNet(n_images, seed=seed)
    dataset = BlobImageDataset(
        source.blobs, labels=source.labels, transform=transform, log_file=log_file
    )
    return DataLoader(
        dataset,
        batch_size=batch_size,
        seed=seed,
        log_file=log_file,
        **loader_kwargs,
    )


def epoch_arrays(loader):
    """[(images ndarray, labels ndarray)] with contents copied out."""
    return [
        (images.numpy().copy(), labels.numpy().copy())
        for images, labels in loader
    ]


def assert_epochs_identical(batched, oracle):
    assert len(batched) == len(oracle)
    for (b_img, b_lab), (o_img, o_lab) in zip(batched, oracle):
        np.testing.assert_array_equal(b_lab, o_lab)
        assert b_img.dtype == o_img.dtype
        np.testing.assert_array_equal(b_img, o_img)


class TestPixelParity:
    def test_ic_epoch_bit_identical_single_process(self):
        batched = epoch_arrays(
            make_loader(ic_transform(seed=3), shuffle=True, batched_execution=True)
        )
        oracle = epoch_arrays(
            make_loader(ic_transform(seed=3), shuffle=True, batched_execution=False)
        )
        assert_epochs_identical(batched, oracle)

    def test_partial_final_batch(self):
        batched = epoch_arrays(
            make_loader(ic_transform(seed=1), n_images=10, batched_execution=True)
        )
        oracle = epoch_arrays(
            make_loader(ic_transform(seed=1), n_images=10, batched_execution=False)
        )
        assert batched[-1][0].shape[0] == 2
        assert_epochs_identical(batched, oracle)

    def test_engine_context_selects_oracle(self):
        loader_a = make_loader(ic_transform(seed=5))
        loader_b = make_loader(ic_transform(seed=5))
        with batch_engine("persample"):
            oracle = epoch_arrays(loader_a)
        batched = epoch_arrays(loader_b)
        assert_epochs_identical(batched, oracle)

    def test_multiworker_deterministic_chain(self):
        # Random transforms derive per-thread streams, so worker threads
        # of two loaders cannot share draws; the RNG-free chain must be
        # bit-identical across engines even with thread workers.
        batched = epoch_arrays(
            make_loader(
                det_transform(), n_images=12, num_workers=2,
                batched_execution=True,
            )
        )
        oracle = epoch_arrays(
            make_loader(
                det_transform(), n_images=12, num_workers=2,
                batched_execution=False,
            )
        )
        assert_epochs_identical(batched, oracle)

    def test_resize_chain_parity(self):
        batched = epoch_arrays(
            make_loader(det_transform(), batched_execution=True)
        )
        oracle = epoch_arrays(
            make_loader(det_transform(), batched_execution=False)
        )
        assert_epochs_identical(batched, oracle)

    def test_pinned_batches_match(self):
        batched = epoch_arrays(
            make_loader(
                ic_transform(seed=2), pin_memory=True, batched_execution=True
            )
        )
        oracle = epoch_arrays(
            make_loader(
                ic_transform(seed=2), pin_memory=True, batched_execution=False
            )
        )
        assert_epochs_identical(batched, oracle)


class TestRngDrawOrder:
    def test_streams_aligned_after_epoch(self):
        # After a full epoch both engines must leave every random
        # transform's stream at the same position: the next scalar draw
        # is the proof.
        compose_a = ic_transform(seed=11)
        compose_b = ic_transform(seed=11)
        epoch_arrays(make_loader(compose_a, batched_execution=True))
        epoch_arrays(make_loader(compose_b, batched_execution=False))
        for t_a, t_b in zip(compose_a.transforms[:2], compose_b.transforms[:2]):
            assert t_a._rng().random() == t_b._rng().random()

    def test_vector_draw_matches_scalar_draws(self):
        # The flip transform replaces N scalar random() calls with one
        # random(N); PCG64 must hand back the identical stream.
        a = np.random.default_rng(123)
        b = np.random.default_rng(123)
        np.testing.assert_array_equal(
            a.random(16), np.array([b.random() for _ in range(16)])
        )

    def test_transform_level_parity(self):
        # batch_apply on a fresh instance == per-sample loop on a fresh
        # instance with the same seed (identical derived streams).
        images = [
            Image(make_test_image(h, w, seed=40 + i))
            for i, (h, w) in enumerate([(60, 80), (72, 72), (96, 50), (64, 64)])
        ]
        per_sample = RandomResizedCrop(24, seed=7)
        batched = RandomResizedCrop(24, seed=7)
        oracle = [per_sample(image).to_array() for image in images]
        out = batched.batch_apply(
            ImageBatch.from_arrays([image.to_array() for image in images]),
            BatchBuffer(reuse=True, depth=1),
        )
        np.testing.assert_array_equal(out.require_hwc_stack(), np.stack(oracle))

    def test_flip_parity_ragged(self):
        images = [
            Image(make_test_image(40, 48, seed=60 + i)) for i in range(6)
        ]
        per_sample = RandomHorizontalFlip(seed=9)
        batched = RandomHorizontalFlip(seed=9)
        oracle = [per_sample(image).to_array() for image in images]
        out = batched.batch_apply(
            ImageBatch.from_arrays([image.to_array() for image in images]),
            BatchBuffer(reuse=False),
        )
        for got, want in zip(out.image_arrays(), oracle):
            np.testing.assert_array_equal(got, want)


class TestTraceStructure:
    OP_NAMES = ("RandomResizedCrop", "RandomHorizontalFlip", "ToTensor", "Normalize")

    def run_epoch(self, batched, n_images=8, batch_size=4):
        log = InMemoryTraceLog()
        loader = make_loader(
            ic_transform(seed=4, log_file=log),
            n_images=n_images,
            batch_size=batch_size,
            log_file=log,
            batched_execution=batched,
        )
        list(loader)
        return log.records()

    def test_batched_one_op_record_per_transform_per_batch(self):
        records = self.run_epoch(batched=True)
        ops = [r for r in records if r.kind == KIND_OP and r.name in self.OP_NAMES]
        assert len(ops) == len(self.OP_NAMES) * 2
        for name in self.OP_NAMES:
            named = [r for r in ops if r.name == name]
            assert [r.batch_id for r in named] == [0, 1]

    def test_oracle_one_op_record_per_transform_per_sample(self):
        records = self.run_epoch(batched=False)
        ops = [r for r in records if r.kind == KIND_OP and r.name in self.OP_NAMES]
        assert len(ops) == len(self.OP_NAMES) * 8
        # The paper's Listing 3 logs no batch id; analysis recovers it by
        # span containment.
        assert {r.batch_id for r in ops} == {-1}

    def test_op_name_sets_equal_across_engines(self):
        batched = {
            r.name for r in self.run_epoch(batched=True) if r.kind == KIND_OP
        }
        oracle = {
            r.name for r in self.run_epoch(batched=False) if r.kind == KIND_OP
        }
        assert batched == oracle

    def test_loader_and_collation_counts_match(self):
        # Batched: one whole-batch Loader record per batch with the real
        # batch id (the decode engine, DESIGN.md §9). Oracle: one record
        # per sample with the -1 placeholder (the paper's Listing 3).
        for engine, expected_loads in ((True, 2), (False, 8)):
            records = self.run_epoch(batched=engine)
            loads = [
                r for r in records
                if r.kind == KIND_OP and r.name == LOADER_OP_NAME
            ]
            collations = [
                r for r in records
                if r.kind == KIND_OP and r.name == COLLATION_OP_NAME
            ]
            assert len(loads) == expected_loads
            assert len(collations) == 2
            if engine:
                assert [r.batch_id for r in loads] == [0, 1]
            else:
                assert {r.batch_id for r in loads} == {-1}

    def test_batched_records_carry_identity(self):
        records = self.run_epoch(batched=True)
        ops = [r for r in records if r.kind == KIND_OP and r.name in self.OP_NAMES]
        for record in ops:
            assert record.worker_id >= -1
            assert record.pid > 0
            assert record.duration_ns >= 0
            assert record.start_ns > 0


class TestFallback:
    def test_lambda_chain_stays_per_sample(self):
        compose = Compose(
            [Resize(16), Lambda(lambda x: x), ToTensor(), Normalize(MEAN, STD)]
        )
        assert not BatchCompose.supports(compose)
        source = SyntheticImageNet(4, seed=0)
        dataset = BlobImageDataset(
            source.blobs, labels=source.labels, transform=compose
        )
        fetcher = create_fetcher(dataset, default_collate, batched=True)
        assert fetcher._plan is None
        images, labels = fetcher.fetch([0, 1, 2, 3])
        assert images.shape == (4, 3, 16, 16)

    def test_custom_collate_stays_per_sample(self):
        source = SyntheticImageNet(4, seed=0)
        dataset = BlobImageDataset(
            source.blobs, labels=source.labels, transform=ic_transform(seed=0)
        )
        fetcher = create_fetcher(dataset, lambda samples: samples, batched=True)
        assert fetcher._plan is None

    def test_unbatchable_samples_fall_back_with_parity(self):
        # String labels defeat the int64 label buffer; the plan resolves
        # but fetch must detour through the per-sample chain — with the
        # same pixels as the oracle loader.
        source = SyntheticImageNet(6, seed=2)
        labels = [f"class-{i}" for i in range(6)]

        def run(batched):
            dataset = BlobImageDataset(
                source.blobs, labels=labels, transform=ic_transform(seed=8)
            )
            fetcher = create_fetcher(
                dataset, default_collate, batched=batched
            )
            if batched:
                assert fetcher._plan is not None
            images, got_labels = fetcher.fetch([0, 1, 2, 3, 4, 5])
            return images.numpy().copy(), got_labels

        batched_images, batched_labels = run(batched=True)
        oracle_images, oracle_labels = run(batched=False)
        np.testing.assert_array_equal(batched_images, oracle_images)
        assert batched_labels == labels
        assert oracle_labels == labels

    def test_grayscale_chain_unsupported(self):
        compose = Compose([Grayscale(), ToTensor(), Normalize((0.5,), (0.5,))])
        assert not BatchCompose.supports(compose)

    def test_dataset_without_load_untransformed(self):
        class Plain:
            def __getitem__(self, index):
                return np.ones(3)

            def __len__(self):
                return 4

        fetcher = create_fetcher(Plain(), default_collate, batched=True)
        assert isinstance(fetcher, _MapDatasetFetcher)
        assert fetcher._plan is None


class TestEngineSelection:
    def test_default_engine_is_batched(self):
        assert current_batch_engine() == "batched"

    def test_context_restores_previous(self):
        with batch_engine("persample"):
            assert current_batch_engine() == "persample"
            with batch_engine("batched"):
                assert current_batch_engine() == "batched"
            assert current_batch_engine() == "persample"
        assert current_batch_engine() == "batched"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            with batch_engine("turbo"):
                pass

    def test_context_switches_trace_shape(self):
        log = InMemoryTraceLog()
        loader = make_loader(
            ic_transform(seed=6, log_file=log), n_images=4, log_file=log
        )
        with batch_engine("persample"):
            list(loader)
        per_sample_ops = [
            r for r in log.records()
            if r.kind == KIND_OP and r.name == "ToTensor"
        ]
        assert len(per_sample_ops) == 4
        list(loader)
        batched_ops = [
            r for r in log.records()
            if r.kind == KIND_OP and r.name == "ToTensor"
        ]
        assert len(batched_ops) == 4 + 1

    def test_explicit_flag_overrides_context(self):
        log = InMemoryTraceLog()
        loader = make_loader(
            ic_transform(seed=6, log_file=log),
            n_images=4,
            log_file=log,
            batched_execution=True,
        )
        with batch_engine("persample"):
            list(loader)
        ops = [
            r for r in log.records()
            if r.kind == KIND_OP and r.name == "ToTensor"
        ]
        assert len(ops) == 1


class TestBatchComposeSupports:
    def test_ic_chain_supported(self):
        assert BatchCompose.supports(ic_transform(seed=0))

    def test_requires_exactly_one_to_tensor(self):
        assert not BatchCompose.supports(Compose([Resize(8)]))
        assert not BatchCompose.supports(
            Compose([ToTensor(), ToTensor()])
        )

    def test_stage_order_enforced(self):
        assert not BatchCompose.supports(
            Compose([ToTensor(), Resize(8)])
        )
        assert not BatchCompose.supports(
            Compose([Normalize(MEAN, STD), ToTensor()])
        )

    def test_empty_chain_unsupported(self):
        assert not BatchCompose.supports(Compose([]))

    def test_ctor_rejects_unsupported(self):
        with pytest.raises(ReproError):
            BatchCompose(Compose([Resize(8)]))


class TestBufferReuse:
    def test_reuse_aliases_consecutive_batches(self):
        loader = make_loader(
            ic_transform(seed=0),
            batched_execution=True,
            reuse_batch_buffers=True,
        )
        held = [batch for batch, _ in loader]
        addresses = {batch.numpy().ctypes.data for batch in held}
        assert len(addresses) == 1

    def test_no_reuse_by_default_without_pin(self):
        loader = make_loader(ic_transform(seed=0), batched_execution=True)
        assert loader.reuse_batch_buffers is False
        held = [batch for batch, _ in loader]
        addresses = {batch.numpy().ctypes.data for batch in held}
        assert len(addresses) == len(held)

    def test_pin_memory_enables_reuse_safely(self):
        # pin_memory copies each batch out of the arena, so reuse
        # defaults on and earlier batches survive later ones.
        loader = make_loader(
            ic_transform(seed=0), pin_memory=True, batched_execution=True
        )
        assert loader.reuse_batch_buffers is True
        held = []
        snapshots = []
        for images, _ in loader:
            held.append(images)
            snapshots.append(images.numpy().copy())
        for tensor, snapshot in zip(held, snapshots):
            np.testing.assert_array_equal(tensor.numpy(), snapshot)

    def test_worker_ring_depth(self):
        loader = make_loader(
            ic_transform(seed=0), num_workers=2, prefetch_factor=2
        )
        assert loader.batch_buffer_depth == 4
        single = make_loader(ic_transform(seed=0))
        assert single.batch_buffer_depth == 1


class TestBatchBuffer:
    def test_same_slot_reused_across_generations(self):
        arena = BatchBuffer(reuse=True, depth=1)
        first = arena.get("x", (2, 3), np.float32)
        arena.advance()
        second = arena.get("x", (2, 3), np.float32)
        assert first.ctypes.data == second.ctypes.data
        assert arena.hits == 1 and arena.misses == 1

    def test_depth_separates_generations(self):
        arena = BatchBuffer(reuse=True, depth=2)
        first = arena.get("x", (4,), np.float32)
        arena.advance()
        second = arena.get("x", (4,), np.float32)
        assert first.ctypes.data != second.ctypes.data
        arena.advance()
        third = arena.get("x", (4,), np.float32)
        assert third.ctypes.data == first.ctypes.data

    def test_pool_grows_and_shrinks_views(self):
        arena = BatchBuffer(reuse=True, depth=1)
        big = arena.get("x", (8, 8), np.uint8)
        arena.advance()
        small = arena.get("x", (4, 4), np.uint8)
        assert small.ctypes.data == big.ctypes.data
        assert small.shape == (4, 4)

    def test_reuse_off_returns_fresh(self):
        arena = BatchBuffer(reuse=False)
        first = arena.get("x", (4,), np.float64)
        second = arena.get("x", (4,), np.float64)
        assert first.ctypes.data != second.ctypes.data

    def test_invalid_depth(self):
        with pytest.raises(ReproError):
            BatchBuffer(depth=0)


class TestSymbolBuckets:
    def test_batched_symbols_subset_of_oracle(self):
        # LotusMap attribution buckets: the batched engine must not
        # introduce C symbols the per-sample oracle never exercises
        # (it may *drop* some — at::native::stack disappears with the
        # preallocated collate).
        def capture(batched):
            recorder = EventRecorder()
            source = SyntheticImageNet(4, seed=1)
            dataset = BlobImageDataset(
                source.blobs, labels=source.labels,
                transform=ic_transform(seed=1),
            )
            fetcher = create_fetcher(dataset, default_collate, batched=batched)
            attach_recorder(recorder)
            try:
                fetcher.fetch([0, 1, 2, 3])
            finally:
                detach_recorder(recorder)
            return {(e.function, e.library) for e in recorder.events()}

        batched_symbols = capture(batched=True)
        oracle_symbols = capture(batched=False)
        assert batched_symbols
        assert batched_symbols <= oracle_symbols
