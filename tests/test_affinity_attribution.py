"""Mix-aware (affinity) counter splitting — the paper's § IV-B future work."""

import pytest

from repro.core.lotusmap import attribute_counters, attribute_counters_affinity
from repro.core.lotusmap.mapping import MappedFunction, Mapping
from repro.hwprof.profile import FunctionProfile, HardwareProfile


def make_profile(rows):
    profile = HardwareProfile("intel", 1000)
    for function, (library, cpu) in rows.items():
        row = FunctionProfile(function=function, library=library, samples=1)
        row.counters.add({"cpu_time_ns": cpu})
        profile._rows[(function, library)] = row
    return profile


class TestMappingWeights:
    def test_add_with_weights(self):
        mapping = Mapping("intel")
        mapping.add("Loader", [("decode_mcu", "libjpeg", 0.8), ("memmove", "libc", 0.2)])
        assert mapping.affinity("Loader", "decode_mcu") == 0.8
        assert mapping.affinity("Loader", "memmove") == 0.2

    def test_default_weight(self):
        mapping = Mapping("intel")
        mapping.add("Loader", [("decode_mcu", "libjpeg")])
        assert mapping.affinity("Loader", "decode_mcu") == 1.0

    def test_unknown_affinity_zero(self):
        mapping = Mapping("intel")
        mapping.add("Loader", [("decode_mcu", "libjpeg")])
        assert mapping.affinity("Loader", "other") == 0.0
        assert mapping.affinity("Missing", "decode_mcu") == 0.0

    def test_weights_survive_json(self):
        mapping = Mapping("intel")
        mapping.add("Loader", [("decode_mcu", "libjpeg", 0.75)])
        restored = Mapping.from_json(mapping.to_json())
        assert restored.affinity("Loader", "decode_mcu") == 0.75

    def test_legacy_two_element_json(self):
        """Older mapping files without weights still load (weight 1.0)."""
        text = (
            '{"vendor": "intel", "operations": '
            '{"Loader": [["decode_mcu", "libjpeg"]]}}'
        )
        mapping = Mapping.from_json(text)
        assert mapping.affinity("Loader", "decode_mcu") == 1.0


class TestAffinityAttribution:
    def make_mapping(self):
        """memmove: 5% of Loader's own profile, 60% of ToTensor's."""
        mapping = Mapping("intel")
        mapping.add(
            "Loader",
            [("decode_mcu", "libjpeg", 0.95), ("memmove", "libc", 0.05)],
        )
        mapping.add(
            "ToTensor",
            [("copy_", "libtensor", 0.40), ("memmove", "libc", 0.60)],
        )
        return mapping

    def test_affinity_shifts_weight_from_slow_low_mix_op(self):
        """A slow op that barely uses a function should not absorb its
        counters: affinity weighting corrects time-only weighting."""
        profile = make_profile({"memmove": ("libc", 1000.0)})
        mapping = self.make_mapping()
        # Loader is 10x slower overall, but memmove is only 5 % of it.
        elapsed = {"Loader": 10.0, "ToTensor": 1.0}
        time_only = attribute_counters(profile, mapping, elapsed)
        affinity = attribute_counters_affinity(profile, mapping, elapsed)
        assert time_only["Loader"].cpu_time_ns > affinity["Loader"].cpu_time_ns
        assert affinity["ToTensor"].cpu_time_ns > time_only["ToTensor"].cpu_time_ns
        # w(Loader) = 10*0.05 / (10*0.05 + 1*0.60) = 0.4545...
        assert affinity["Loader"].cpu_time_ns == pytest.approx(1000 * 0.5 / 1.1)

    def test_conserves_total(self):
        profile = make_profile(
            {"memmove": ("libc", 1000.0), "decode_mcu": ("libjpeg", 500.0)}
        )
        mapping = self.make_mapping()
        result = attribute_counters_affinity(
            profile, mapping, {"Loader": 3.0, "ToTensor": 2.0}
        )
        total = sum(c.cpu_time_ns for c in result.values())
        assert total == pytest.approx(1500.0)

    def test_zero_affinity_falls_back_to_time(self):
        profile = make_profile({"shared": ("libc", 100.0)})
        mapping = Mapping("intel")
        mapping.add("A", [("shared", "libc", 0.0)])
        mapping.add("B", [("shared", "libc", 0.0)])
        result = attribute_counters_affinity(profile, mapping, {"A": 3.0, "B": 1.0})
        assert result["A"].cpu_time_ns == pytest.approx(75.0)

    def test_no_elapsed_falls_back_to_equal(self):
        profile = make_profile({"shared": ("libc", 100.0)})
        mapping = Mapping("intel")
        mapping.add("A", [("shared", "libc", 0.0)])
        mapping.add("B", [("shared", "libc", 0.0)])
        result = attribute_counters_affinity(profile, mapping, {})
        assert result["A"].cpu_time_ns == pytest.approx(50.0)


class TestBuiltMappingCarriesWeights:
    def test_ic_mapping_weights_normalized(self):
        from repro.experiments.common import build_ic_mapping, scaled_vtune

        mapping = build_ic_mapping(lambda: scaled_vtune(seed=5), runs=6, seed=5)
        for op in mapping.operations():
            entries = mapping.functions_for(op)
            if entries:
                total = sum(entry.weight for entry in entries)
                assert total == pytest.approx(1.0, abs=1e-6)

    def test_loader_dominated_by_decode(self):
        from repro.experiments.common import build_ic_mapping, scaled_vtune

        mapping = build_ic_mapping(lambda: scaled_vtune(seed=6), runs=6, seed=6)
        assert mapping.affinity("Loader", "decode_mcu") > 0.3
