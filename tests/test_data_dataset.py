import numpy as np
import pytest

from repro.core.lotustrace import InMemoryTraceLog
from repro.data.dataset import BlobImageDataset, ImageFolder, pil_loader
from repro.datasets.synthetic import SyntheticImageNet
from repro.errors import DataLoaderError
from repro.imaging.image import Image
from repro.imaging.jpeg.codec import encode_sjpg
from tests.conftest import make_test_image


class TestPilLoader:
    def test_returns_decoded_rgb(self, sjpg_blob):
        image = pil_loader(sjpg_blob)
        assert isinstance(image, Image)
        assert image.mode == "RGB"
        assert image.is_decoded


class TestBlobImageDataset:
    def test_basic_access(self, small_blobs):
        ds = BlobImageDataset(small_blobs, labels=list(range(len(small_blobs))))
        image, label = ds[3]
        assert label == 3
        assert image.mode == "RGB"
        assert len(ds) == len(small_blobs)

    def test_default_labels_zero(self, small_blobs):
        _, label = BlobImageDataset(small_blobs)[0]
        assert label == 0

    def test_label_length_mismatch(self, small_blobs):
        with pytest.raises(DataLoaderError):
            BlobImageDataset(small_blobs, labels=[0])

    def test_transform_applied(self, small_blobs):
        ds = BlobImageDataset(small_blobs, transform=lambda image: image.size)
        size, _ = ds[0]
        assert isinstance(size, tuple)

    def test_loader_op_logged(self, small_blobs):
        log = InMemoryTraceLog()
        ds = BlobImageDataset(small_blobs, log_file=log)
        ds[0]
        ds[1]
        records = log.records()
        assert len(records) == 2
        assert all(r.name == "Loader" for r in records)
        assert all(r.duration_ns > 0 for r in records)

    def test_no_log_by_default(self, small_blobs):
        ds = BlobImageDataset(small_blobs)
        assert ds._sink is None


class TestImageFolder:
    @pytest.fixture
    def folder(self, tmp_path):
        dataset = SyntheticImageNet(8, n_classes=3, seed=0)
        dataset.write_image_folder(tmp_path)
        return tmp_path

    def test_discovers_classes_and_samples(self, folder):
        ds = ImageFolder(folder)
        assert len(ds.classes) >= 2
        assert len(ds) == 8
        image, label = ds[0]
        assert 0 <= label < len(ds.classes)
        assert image.mode == "RGB"

    def test_class_to_idx_consistent(self, folder):
        ds = ImageFolder(folder)
        for name, idx in ds.class_to_idx.items():
            assert ds.classes[idx] == name

    def test_labels_match_directories(self, folder):
        ds = ImageFolder(folder)
        for path, label in ds.samples:
            assert ds.classes[label] in path

    def test_empty_root_raises(self, tmp_path):
        with pytest.raises(DataLoaderError):
            ImageFolder(tmp_path)

    def test_no_matching_extension_raises(self, tmp_path):
        (tmp_path / "class_a").mkdir()
        (tmp_path / "class_a" / "notes.txt").write_text("hi")
        with pytest.raises(DataLoaderError):
            ImageFolder(tmp_path)

    def test_loader_logging(self, folder):
        log = InMemoryTraceLog()
        ds = ImageFolder(folder, log_file=log)
        ds[0]
        assert log.records()[0].name == "Loader"

    def test_transform_applied(self, folder):
        ds = ImageFolder(folder, transform=lambda image: "transformed")
        value, _ = ds[0]
        assert value == "transformed"
