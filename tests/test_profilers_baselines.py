import os
import time

import pytest

from repro.errors import ProfilerMemoryError
from repro.profilers import (
    AustinLike,
    LotusTraceProfiler,
    PySpyLike,
    ScaleneLike,
    TorchProfilerLike,
)
from repro.profilers.sampling import FrameSampler, StackSample


def busy_function(duration_s=0.08):
    deadline = time.monotonic() + duration_s
    total = 0
    while time.monotonic() < deadline:
        total += sum(range(200))
    return total


class TestFrameSampler:
    def test_samples_collected(self):
        samples = []
        sampler = FrameSampler(0.005, samples.append)
        sampler.start()
        busy_function()
        sampler.stop()
        assert samples
        assert all(isinstance(s, StackSample) for s in samples)

    def test_leaf_frame_identifies_function(self):
        samples = []
        sampler = FrameSampler(0.002, samples.append)
        sampler.start()
        busy_function()
        sampler.stop()
        leaf_names = {s.leaf[0] for s in samples}
        assert "busy_function" in leaf_names

    def test_stop_idempotent(self):
        sampler = FrameSampler(0.01, lambda s: None)
        sampler.start()
        sampler.stop()
        sampler.stop()

    def test_double_start_raises(self):
        sampler = FrameSampler(0.01, lambda s: None)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            FrameSampler(0, lambda s: None)


class TestPySpyLike:
    def test_function_times(self):
        profiler = PySpyLike(interval_s=0.002)
        with profiler:
            busy_function()
        times = profiler.function_times_s()
        assert times.get("busy_function", 0) > 0

    def test_write_log_raw_samples(self, tmp_path):
        profiler = PySpyLike(interval_s=0.002)
        with profiler:
            busy_function()
        size = profiler.write_log(str(tmp_path / "pyspy.json"))
        assert size > 0

    def test_capabilities_epoch_only(self):
        caps = PySpyLike().capabilities().as_row()
        assert caps == {
            "Epoch": True, "Batch": False, "Async": False,
            "Wait": False, "Delay": False,
        }

    def test_transforms_labeled_dunder_call(self, small_blobs):
        """The paper's labeling problem: sampled transform frames say
        __call__, not the transform class name."""
        from repro.data.dataset import BlobImageDataset
        from repro.transforms import Compose, RandomResizedCrop

        dataset = BlobImageDataset(
            small_blobs, transform=Compose([RandomResizedCrop(32, seed=0)])
        )
        profiler = PySpyLike(interval_s=0.001)
        with profiler:
            for i in range(len(dataset)):
                dataset[i]
        all_frame_names = {
            frame[0] for sample in profiler.samples() for frame in sample.frames
        }
        assert "__call__" in all_frame_names
        assert "RandomResizedCrop" not in all_frame_names


class TestAustinLike:
    def test_live_log_lines(self, tmp_path):
        path = str(tmp_path / "austin.log")
        profiler = AustinLike(path, interval_s=0.002)
        with profiler:
            busy_function()
        with open(path) as handle:
            lines = handle.readlines()
        assert lines
        assert all(line.startswith("P0;T") for line in lines)

    def test_storage_grows_with_runtime(self, tmp_path):
        short_path = str(tmp_path / "short.log")
        long_path = str(tmp_path / "long.log")
        with AustinLike(short_path, interval_s=0.002):
            busy_function(0.03)
        with AustinLike(long_path, interval_s=0.002):
            busy_function(0.25)
        assert os.path.getsize(long_path) > os.path.getsize(short_path)

    def test_metrics(self, tmp_path):
        profiler = AustinLike(str(tmp_path / "a.log"), interval_s=0.002)
        with profiler:
            busy_function()
        metrics = profiler.extract_metrics()
        assert "epoch_preprocessing_time_s" in metrics
        assert metrics["function_times_s"]


class TestScaleneLike:
    def test_line_level_attribution(self):
        profiler = ScaleneLike(interval_s=0.002)
        with profiler:
            busy_function()
        metrics = profiler.extract_metrics()
        files = {filename for (filename, _), _ in metrics["top_lines"]}
        assert any("test_profilers_baselines" in name for name in files)

    def test_memory_tracking(self):
        profiler = ScaleneLike(interval_s=0.005)
        with profiler:
            _ = [bytes(10_000) for _ in range(200)]
        assert profiler.extract_metrics()["memory_peak_bytes"] > 0

    def test_no_capabilities(self):
        assert not any(ScaleneLike().capabilities().as_row().values())

    def test_log_small(self, tmp_path):
        profiler = ScaleneLike(interval_s=0.005)
        with profiler:
            busy_function(0.05)
        size = profiler.write_log(str(tmp_path / "scalene.json"))
        assert 0 < size < 200_000  # aggregates stay small


class TestTorchProfilerLike:
    def test_only_main_thread_events_reported(self, small_blobs):
        from repro.data.dataloader import DataLoader
        from repro.data.dataset import BlobImageDataset
        from repro.transforms import Compose, RandomResizedCrop, ToTensor

        dataset = BlobImageDataset(
            small_blobs,
            transform=Compose([RandomResizedCrop(32, seed=0), ToTensor()]),
        )
        loader = DataLoader(dataset, batch_size=4, num_workers=2)
        profiler = TorchProfilerLike()
        with profiler:
            for _ in loader:
                pass
        # Native decode work happened on worker threads only.
        assert profiler.extract_metrics()["main_process_events"] == 0

    def test_main_thread_events_visible(self, sjpg_blob):
        from repro.imaging.image import Image

        profiler = TorchProfilerLike()
        with profiler:
            Image.open(sjpg_blob).convert("RGB")
        assert profiler.extract_metrics()["main_process_events"] > 0

    def test_memory_budget_enforced(self, sjpg_blob):
        from repro.imaging.image import Image

        profiler = TorchProfilerLike(memory_budget_bytes=2048)
        profiler.start()
        try:
            with pytest.raises(ProfilerMemoryError):
                for _ in range(100):
                    Image.open(sjpg_blob).convert("RGB")
        finally:
            profiler.stop()

    def test_wait_capability(self):
        profiler = TorchProfilerLike()
        profiler.record_wait(0, 5_000_000)
        metrics = profiler.extract_metrics()
        assert metrics["wait_times_s"] == [pytest.approx(0.005)]

    def test_chrome_trace_output(self, tmp_path, sjpg_blob):
        from repro.imaging.image import Image
        import json

        profiler = TorchProfilerLike()
        with profiler:
            Image.open(sjpg_blob).convert("RGB")
        path = str(tmp_path / "torch.json")
        profiler.write_log(path)
        payload = json.loads(open(path).read())
        assert payload["traceEvents"]
