import pytest

from repro.core.lotustrace.records import (
    KIND_BATCH_CONSUMED,
    KIND_BATCH_PREPROCESSED,
    KIND_BATCH_WAIT,
    KIND_OP,
    MAIN_PROCESS_WORKER_ID,
    OOO_MARKER_DURATION_NS,
    TraceRecord,
)
from repro.errors import TraceError


def make_record(**overrides):
    defaults = dict(
        kind=KIND_OP,
        name="RandomResizedCrop",
        batch_id=-1,
        worker_id=2,
        pid=1234,
        start_ns=1_000_000,
        duration_ns=5_000,
    )
    defaults.update(overrides)
    return TraceRecord(**defaults)


class TestTraceRecord:
    def test_end_ns(self):
        assert make_record().end_ns == 1_005_000

    def test_roundtrip_line(self):
        record = make_record(kind=KIND_BATCH_WAIT, out_of_order=True)
        assert TraceRecord.from_line(record.to_line()) == record

    def test_roundtrip_all_kinds(self):
        for kind in (KIND_OP, KIND_BATCH_PREPROCESSED, KIND_BATCH_WAIT,
                     KIND_BATCH_CONSUMED):
            record = make_record(kind=kind, batch_id=7)
            assert TraceRecord.from_line(record.to_line()) == record

    def test_roundtrip_with_newline(self):
        record = make_record()
        assert TraceRecord.from_line(record.to_line() + "\n") == record

    def test_invalid_kind(self):
        with pytest.raises(TraceError):
            make_record(kind="bogus")

    def test_negative_duration(self):
        with pytest.raises(TraceError):
            make_record(duration_ns=-1)

    def test_malformed_line_wrong_fields(self):
        with pytest.raises(TraceError):
            TraceRecord.from_line("op,Name,1,2")

    def test_malformed_line_bad_int(self):
        line = make_record().to_line().replace("1234", "notanint")
        with pytest.raises(TraceError):
            TraceRecord.from_line(line)

    def test_ooo_marker_is_one_microsecond(self):
        assert OOO_MARKER_DURATION_NS == 1_000

    def test_main_process_sentinel(self):
        assert MAIN_PROCESS_WORKER_ID == -1
