import pytest

from repro.clib.costmodel import BALANCED, COMPUTE_BOUND
from repro.clib.registry import (
    LIBC,
    NativeFunction,
    NativeRegistry,
    native,
)


def make_fn(name="k", library=LIBC, **kwargs):
    return NativeFunction(lambda x: x + 1, name=name, library=library,
                          signature=BALANCED, **kwargs)


class TestNativeFunction:
    def test_call_passthrough(self):
        fn = make_fn()
        assert fn(1) == 2

    def test_visible_to_default_both_vendors(self):
        fn = make_fn()
        assert fn.visible_to("intel") and fn.visible_to("amd")

    def test_vendor_restriction(self):
        fn = make_fn(vendors=("intel",))
        assert fn.visible_to("intel")
        assert not fn.visible_to("amd")

    def test_reported_identity_default(self):
        fn = make_fn(name="memset", library=LIBC)
        assert fn.reported_identity("intel") == ("memset", LIBC)

    def test_reported_identity_alias(self):
        fn = make_fn(
            name="__memset_erms",
            aliases={"amd": ("__memset_plain", "libc-2.31.so")},
        )
        assert fn.reported_identity("amd") == ("__memset_plain", "libc-2.31.so")
        assert fn.reported_identity("intel") == ("__memset_erms", LIBC)

    def test_repr_contains_name(self):
        assert "memset" in repr(make_fn(name="memset"))


class TestNativeRegistry:
    def test_register_and_get(self):
        registry = NativeRegistry()
        fn = registry.register(make_fn(name="a"))
        assert registry.get("a") is fn

    def test_duplicate_name_rejected(self):
        registry = NativeRegistry()
        registry.register(make_fn(name="a"))
        with pytest.raises(ValueError):
            registry.register(make_fn(name="a"))

    def test_reregistering_same_object_ok(self):
        registry = NativeRegistry()
        fn = make_fn(name="a")
        registry.register(fn)
        registry.register(fn)
        assert len(registry) == 1

    def test_unknown_get_raises(self):
        with pytest.raises(KeyError):
            NativeRegistry().get("missing")

    def test_lookup_signature_fallback(self):
        registry = NativeRegistry()
        assert registry.lookup_signature("unknown") is BALANCED

    def test_lookup_signature_registered(self):
        registry = NativeRegistry()
        registry.register(
            NativeFunction(lambda: None, "k", LIBC, COMPUTE_BOUND)
        )
        assert registry.lookup_signature("k") is COMPUTE_BOUND

    def test_contains_and_len(self):
        registry = NativeRegistry()
        registry.register(make_fn(name="a"))
        assert "a" in registry
        assert "b" not in registry
        assert len(registry) == 1

    def test_by_library(self):
        registry = NativeRegistry()
        registry.register(make_fn(name="a", library="libA.so"))
        registry.register(make_fn(name="b", library="libB.so"))
        assert [f.name for f in registry.by_library("libA.so")] == ["a"]
        assert registry.libraries() == ["libA.so", "libB.so"]


class TestNativeDecorator:
    def test_decorator_registers(self):
        registry = NativeRegistry()

        @native("deco_fn", library=LIBC, registry=registry)
        def deco_fn(x):
            return x * 2

        assert deco_fn(3) == 6
        assert "deco_fn" in registry

    def test_default_registry_has_jpeg_kernels(self):
        # Importing the imaging package registers the Table I symbols.
        import repro.imaging  # noqa: F401
        from repro.clib.registry import default_registry

        for symbol in ("decode_mcu", "jpeg_idct_islow", "ycc_rgb_convert",
                       "ImagingResampleHorizontal_8bpc", "__libc_calloc"):
            assert symbol in default_registry

    def test_vendor_specific_table1_symbols(self):
        import repro.imaging  # noqa: F401
        from repro.clib.registry import default_registry

        assert not default_registry.get("__libc_calloc").visible_to("amd")
        assert not default_registry.get("sep_upsample").visible_to("intel")
        assert not default_registry.get("precompute_coeffs").visible_to("intel")
        assert not default_registry.get("copy").visible_to("intel")
