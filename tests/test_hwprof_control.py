import time

import pytest

from repro.errors import ProfilerError
from repro.hwprof.control import AMDProfileControl, CollectionWindows, ITT


class TestCollectionWindows:
    def test_initially_not_collecting(self):
        windows = CollectionWindows()
        assert not windows.collecting
        assert not windows.ever_controlled()

    def test_resume_opens_window(self):
        windows = CollectionWindows()
        windows.resume()
        assert windows.collecting
        assert windows.ever_controlled()
        assert len(windows.windows()) == 1

    def test_pause_closes_window(self):
        windows = CollectionWindows()
        windows.resume()
        time.sleep(0.001)
        windows.pause()
        assert not windows.collecting
        (start, end), = windows.windows()
        assert end > start

    def test_double_resume_keeps_one_window(self):
        windows = CollectionWindows()
        windows.resume()
        windows.resume()
        windows.pause()
        assert len(windows.windows()) == 1

    def test_pause_without_resume_noop(self):
        windows = CollectionWindows()
        windows.pause()
        assert windows.windows() == []

    def test_multiple_windows(self):
        windows = CollectionWindows()
        for _ in range(3):
            windows.resume()
            windows.pause()
        assert len(windows.windows()) == 3

    def test_contains(self):
        windows = CollectionWindows()
        windows.resume()
        t_inside = time.time_ns()
        windows.pause()
        assert windows.contains(t_inside)
        assert not windows.contains(t_inside - 10**12)

    def test_freeze_closes_and_locks(self):
        windows = CollectionWindows()
        windows.resume()
        windows.freeze()
        assert windows.frozen
        assert len(windows.windows()) == 1
        with pytest.raises(ProfilerError):
            windows.resume()
        with pytest.raises(ProfilerError):
            windows.pause()


class TestControlAPIs:
    def test_itt_shape(self):
        windows = CollectionWindows()
        itt = ITT(windows)
        itt.resume()
        assert itt.collecting
        itt.pause()
        assert not itt.collecting
        itt.detach()
        assert itt.detached

    def test_amd_core_argument(self):
        windows = CollectionWindows()
        amd = AMDProfileControl(windows)
        amd.resume(1)
        assert amd.collecting
        amd.pause(1)
        assert not amd.collecting

    def test_amd_invalid_core(self):
        amd = AMDProfileControl(CollectionWindows())
        with pytest.raises(ProfilerError):
            amd.resume(-1)
