"""tf.data-style pipeline: declarative API, executor, and LotusTrace hooks."""

import numpy as np
import pytest

from repro.core.lotustrace import (
    InMemoryTraceLog,
    KIND_BATCH_PREPROCESSED,
    KIND_BATCH_WAIT,
    KIND_OP,
    analyze_trace,
)
from repro.errors import DataLoaderError
from repro.tfdata import from_source


def arrays(n):
    return [np.array([float(i)]) for i in range(n)]


class TestDeclarativeApi:
    def test_map_batch(self):
        ds = from_source(arrays(6)).map(lambda x: x * 2).batch(3)
        batches = [b.numpy().ravel().tolist() for b in ds]
        assert batches == [[0.0, 2.0, 4.0], [6.0, 8.0, 10.0]]

    def test_chained_maps(self):
        ds = from_source(arrays(4)).map(lambda x: x + 1).map(lambda x: x * 10)
        assert [v.tolist() for v in ds] == [[10.0], [20.0], [30.0], [40.0]]

    def test_batch_remainder(self):
        ds = from_source(arrays(5)).batch(2)
        assert [len(b) for b in ds] == [2, 2, 1]

    def test_batch_drop_remainder(self):
        ds = from_source(arrays(5)).batch(2, drop_remainder=True)
        assert [len(b) for b in ds] == [2, 2]

    def test_shuffle_permutes_but_covers(self):
        ds = from_source(arrays(32)).shuffle(8, seed=1)
        values = [float(v[0]) for v in ds]
        assert sorted(values) == [float(i) for i in range(32)]
        assert values != [float(i) for i in range(32)]

    def test_shuffle_seeded(self):
        def run(seed):
            return [float(v[0]) for v in from_source(arrays(16)).shuffle(4, seed=seed)]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_prefetch_preserves_order(self):
        ds = from_source(arrays(10)).map(lambda x: x).batch(2).prefetch(2)
        batches = [b.numpy().ravel().tolist() for b in ds]
        assert batches[0] == [0.0, 1.0]
        assert len(batches) == 5

    def test_reiterable(self):
        ds = from_source(arrays(4)).batch(2)
        assert len(list(ds)) == 2
        assert len(list(ds)) == 2

    def test_pipeline_immutability(self):
        base = from_source(arrays(4))
        mapped = base.map(lambda x: x)
        assert len(list(base)) == 4  # base unchanged
        assert len(list(mapped)) == 4

    def test_validation(self):
        ds = from_source(arrays(2))
        with pytest.raises(DataLoaderError):
            ds.map("not callable")
        with pytest.raises(DataLoaderError):
            ds.batch(0)
        with pytest.raises(DataLoaderError):
            ds.shuffle(0)
        with pytest.raises(DataLoaderError):
            ds.prefetch(0)

    def test_repr(self):
        ds = from_source(arrays(2)).map(lambda x: x, name="Decode").batch(2)
        assert "Decode" in repr(ds) and "batch" in repr(ds)


class TestInstrumentation:
    def test_map_ops_logged_with_names(self):
        log = InMemoryTraceLog()
        ds = (
            from_source(arrays(4))
            .map(lambda x: x + 1, name="Loader")
            .map(lambda x: x * 2, name="Scale")
            .batch(2)
            .instrument(log)
        )
        list(ds)
        ops = [r.name for r in log.records() if r.kind == KIND_OP]
        assert ops.count("Loader") == 4
        assert ops.count("Scale") == 4

    def test_transform_instance_labeled_by_class(self):
        class Augment:
            def __call__(self, x):
                return x

        log = InMemoryTraceLog()
        list(from_source(arrays(2)).map(Augment()).batch(2).instrument(log))
        names = {r.name for r in log.records() if r.kind == KIND_OP}
        assert "Augment" in names

    def test_batch_records(self):
        log = InMemoryTraceLog()
        list(from_source(arrays(6)).batch(2).instrument(log))
        fetches = [r for r in log.records() if r.kind == KIND_BATCH_PREPROCESSED]
        assert [r.batch_id for r in fetches] == [0, 1, 2]
        assert all(r.duration_ns >= 0 for r in fetches)

    def test_prefetch_wait_records(self):
        log = InMemoryTraceLog()
        list(from_source(arrays(8)).batch(2).prefetch(2).instrument(log))
        waits = [r for r in log.records() if r.kind == KIND_BATCH_WAIT]
        assert len(waits) == 4
        assert all(r.worker_id == -1 for r in waits)

    def test_uninstrumented_by_default(self):
        log = InMemoryTraceLog()
        list(from_source(arrays(4)).batch(2))
        assert log.records() == []

    def test_full_analysis_compatible(self, small_blobs):
        """An instrumented tf.data-style image pipeline feeds the same
        LotusTrace analysis as the DataLoader one — the generality claim."""
        from repro.imaging.image import Image
        from repro.transforms import RandomResizedCrop, ToTensor

        log = InMemoryTraceLog()
        ds = (
            from_source(small_blobs)
            .map(lambda blob: Image.open(blob).convert("RGB"), name="Loader")
            .map(RandomResizedCrop(32, seed=0))
            .map(ToTensor())
            .batch(4)
            .prefetch(2)
            .instrument(log)
        )
        batches = list(ds)
        assert batches[0].shape == (4, 3, 32, 32)
        analysis = analyze_trace(log.records())
        assert {"Loader", "RandomResizedCrop", "ToTensor"} <= set(analysis.op_durations)
        assert analysis.op_summary("Loader").mean > analysis.op_summary(
            "ToTensor"
        ).mean
        assert len(analysis.wait_times_ns()) == len(analysis.batches)


class TestPrefetchLifecycle:
    def test_abandoned_iteration_releases_producer(self):
        import threading
        import time

        before = threading.active_count()
        ds = from_source(arrays(100)).batch(2).prefetch(1)
        iterator = iter(ds)
        next(iterator)
        iterator.close()  # abandon mid-epoch
        deadline = time.monotonic() + 3.0
        while threading.active_count() > before and time.monotonic() < deadline:
            time.sleep(0.05)
        assert threading.active_count() <= before

    def test_complete_iteration_joins_producer(self):
        import threading
        import time

        before = threading.active_count()
        list(from_source(arrays(6)).batch(2).prefetch(2))
        deadline = time.monotonic() + 3.0
        while threading.active_count() > before and time.monotonic() < deadline:
            time.sleep(0.05)
        assert threading.active_count() <= before


class TestFilterRepeatTake:
    def test_filter(self):
        ds = from_source(arrays(10)).filter(lambda x: float(x[0]) % 2 == 0)
        assert [float(v[0]) for v in ds] == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_filter_instrumented(self):
        log = InMemoryTraceLog()
        ds = (
            from_source(arrays(4))
            .filter(lambda x: True, name="KeepAll")
            .batch(2)
            .instrument(log)
        )
        list(ds)
        names = [r.name for r in log.records() if r.kind == KIND_OP]
        assert names.count("KeepAll") == 4

    def test_repeat(self):
        ds = from_source(arrays(3)).repeat(2)
        assert [float(v[0]) for v in ds] == [0.0, 1.0, 2.0, 0.0, 1.0, 2.0]

    def test_repeat_then_batch_spans_repetitions(self):
        ds = from_source(arrays(3)).repeat(2).batch(4)
        batches = [b.numpy().ravel().tolist() for b in ds]
        assert batches == [[0.0, 1.0, 2.0, 0.0], [1.0, 2.0]]

    def test_take(self):
        ds = from_source(arrays(10)).take(3)
        assert [float(v[0]) for v in ds] == [0.0, 1.0, 2.0]

    def test_take_zero(self):
        assert list(from_source(arrays(5)).take(0)) == []

    def test_take_more_than_available(self):
        assert len(list(from_source(arrays(3)).take(10))) == 3

    def test_repeat_take_compose(self):
        ds = from_source(arrays(2)).repeat(5).take(7)
        assert len(list(ds)) == 7

    def test_validation(self):
        ds = from_source(arrays(2))
        with pytest.raises(DataLoaderError):
            ds.filter("nope")
        with pytest.raises(DataLoaderError):
            ds.repeat(0)
        with pytest.raises(DataLoaderError):
            ds.take(-1)
