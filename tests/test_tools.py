"""Artifact-workflow tools (repro.tools.*)."""

import csv
import json
import os

import pytest

from repro.core.lotustrace import InMemoryTraceLog
from repro.errors import ProfilerError, TraceError
from repro.tools import (
    delay_and_wait_stats,
    hw_event_analyzer,
    preprocessing_time_stats,
    visualization_augmenter,
)
from repro.workloads import SMOKE, build_ic_pipeline


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("tools") / "lotustrace.log"
    bundle = build_ic_pipeline(
        profile=SMOKE, num_workers=2, log_file=str(path), seed=0
    )
    bundle.run_epoch()
    return str(path)


class TestPreprocessingTimeStats:
    def test_compute_stats(self, trace_path):
        summary = preprocessing_time_stats.compute_stats(trace_path)
        assert summary.count > 0
        assert summary.mean > 0

    def test_outlier_removal_reduces_or_keeps_count(self, trace_path):
        raw = preprocessing_time_stats.compute_stats(trace_path)
        trimmed = preprocessing_time_stats.compute_stats(
            trace_path, remove_outliers=True
        )
        assert trimmed.count <= raw.count

    def test_tukey_trim(self):
        values = [1.0, 2.0, 2.0, 3.0, 1000.0]
        kept = preprocessing_time_stats.tukey_trim(values)
        assert 1000.0 not in kept
        assert len(kept) == 4

    def test_tukey_trim_small_input_untouched(self):
        assert preprocessing_time_stats.tukey_trim([1.0, 99.0]) == [1.0, 99.0]

    def test_main_writes_report(self, trace_path, tmp_path, capsys):
        out = tmp_path / "stats.log"
        code = preprocessing_time_stats.main([
            "--data_dir", trace_path, "--remove_outliers",
            "--output_file", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert "IQR" in text and "mean" in text

    def test_directory_input(self, trace_path, tmp_path):
        files = preprocessing_time_stats.trace_files_in(
            os.path.dirname(trace_path)
        )
        assert trace_path in files

    def test_missing_path_raises(self):
        with pytest.raises(TraceError):
            preprocessing_time_stats.trace_files_in("/nonexistent/path")


class TestDelayAndWaitStats:
    def test_main_report(self, trace_path, tmp_path, capsys):
        out = tmp_path / "dw.log"
        code = delay_and_wait_stats.main([
            "--data_dir", trace_path, "--sort_criteria", "duration",
            "--threshold_ms", "5", "--output_file", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert "wait" in text and "delay" in text
        assert "% of batches" in text

    def test_sort_by_duration(self, trace_path):
        from repro.core.lotustrace import analyze_trace, parse_trace_file

        analysis = analyze_trace(parse_trace_file(trace_path))
        rows = delay_and_wait_stats.batch_rows(analysis, "duration")
        totals = [wait + delay for _, wait, delay, _ in rows]
        assert totals == sorted(totals, reverse=True)

    def test_sort_by_batch(self, trace_path):
        from repro.core.lotustrace import analyze_trace, parse_trace_file

        analysis = analyze_trace(parse_trace_file(trace_path))
        rows = delay_and_wait_stats.batch_rows(analysis, "batch")
        ids = [batch_id for batch_id, *_ in rows]
        assert ids == sorted(ids)

    def test_bad_sort_criteria(self, trace_path):
        from repro.core.lotustrace import analyze_trace, parse_trace_file

        analysis = analyze_trace(parse_trace_file(trace_path))
        with pytest.raises(TraceError):
            delay_and_wait_stats.batch_rows(analysis, "bogus")


class TestVisualizationAugmenter:
    def test_standalone_output(self, trace_path, tmp_path):
        out = tmp_path / "viz_file.lotustrace"
        code = visualization_augmenter.main([
            "--coarse", "--lotustrace_trace_dir", trace_path,
            "--output_lotustrace_viz_file", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert any(name.startswith("SBatchPreprocessed") for name in names)

    def test_augment_profiler_trace(self, trace_path, tmp_path):
        host = tmp_path / "torch.json"
        host.write_text(json.dumps(
            {"traceEvents": [{"name": "aten::op", "id": 5, "ph": "X", "ts": 0}]}
        ))
        out = tmp_path / "combined.json"
        code = visualization_augmenter.main([
            "--lotustrace_trace_dir", trace_path,
            "--profiler_trace", str(host),
            "--output_lotustrace_viz_file", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert "aten::op" in names
        assert any(name.startswith("SBatch") for name in names)

    def test_directory_with_prefix(self, trace_path, tmp_path):
        records = visualization_augmenter.collect_records(
            os.path.dirname(trace_path), prefix="lotustrace"
        )
        assert records

    def test_missing_records_raise(self, tmp_path):
        with pytest.raises(TraceError):
            visualization_augmenter.collect_records(str(tmp_path))


class TestHwEventAnalyzer:
    @pytest.fixture(scope="class")
    def inputs(self, tmp_path_factory, trace_path):
        from repro.experiments.common import build_ic_mapping, scaled_vtune
        from repro.hwprof.report import write_profile_csv
        from repro.workloads import build_ic_pipeline

        tmp = tmp_path_factory.mktemp("hwa")
        mapping = build_ic_mapping(lambda: scaled_vtune(seed=9), runs=6, seed=9)
        mapping_path = tmp / "mapping_funcs.json"
        mapping.save(mapping_path)

        uarch_dir = tmp / "uarch"
        uarch_dir.mkdir()
        profiler = scaled_vtune(seed=9)
        profiler.start()
        bundle = build_ic_pipeline(
            profile=SMOKE, num_workers=1, log_file=None, seed=9
        )
        bundle.run_epoch()
        profile = profiler.stop()
        write_profile_csv(profile, uarch_dir / "b8_gpu1_dataloader1.csv")
        return str(mapping_path), str(uarch_dir), str(tmp)

    def test_combined_csv(self, inputs, trace_path, capsys):
        mapping_path, uarch_dir, tmp = inputs
        combined = os.path.join(tmp, "combined.csv")
        code = hw_event_analyzer.main([
            "--mapping_file", mapping_path,
            "--uarch_dir", uarch_dir,
            "--combined_hw_events", combined,
            "--lotustrace_log", trace_path,
        ])
        assert code == 0
        with open(combined) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][:3] == ["config", "function", "module"]
        functions = {row[1] for row in rows[1:]}
        assert "decode_mcu" in functions
        out = capsys.readouterr().out
        assert "Loader" in out and "uops/clk" in out

    def test_missing_uarch_dir(self, inputs):
        mapping_path, _, tmp = inputs
        with pytest.raises(ProfilerError):
            hw_event_analyzer.load_profiles(
                os.path.join(tmp, "nope"), vendor="intel"
            )
