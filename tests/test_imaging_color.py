import numpy as np
import pytest

from repro.imaging.jpeg.color import (
    h2v2_downsample,
    rgb_ycc_convert,
    sep_upsample,
    ycc_rgb_convert,
)


class TestColorConversion:
    def test_roundtrip_close(self):
        rng = np.random.default_rng(0)
        rgb = rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8)
        back = ycc_rgb_convert(rgb_ycc_convert(rgb))
        assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 2

    def test_gray_maps_to_neutral_chroma(self):
        gray = np.full((8, 8, 3), 128, dtype=np.uint8)
        ycc = rgb_ycc_convert(gray)
        assert ycc[..., 0] == pytest.approx(128.0, abs=0.5)
        assert ycc[..., 1] == pytest.approx(128.0, abs=0.5)
        assert ycc[..., 2] == pytest.approx(128.0, abs=0.5)

    def test_luma_weights(self):
        red = np.zeros((1, 1, 3), dtype=np.uint8)
        red[..., 0] = 255
        assert rgb_ycc_convert(red)[0, 0, 0] == pytest.approx(0.299 * 255, abs=0.5)

    def test_output_dtype_uint8(self):
        ycc = np.full((4, 4, 3), 128.0, dtype=np.float32)
        assert ycc_rgb_convert(ycc).dtype == np.uint8

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            rgb_ycc_convert(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            ycc_rgb_convert(np.zeros((4, 4, 1)))


class TestChromaResampling:
    def test_downsample_halves(self):
        plane = np.arange(64, dtype=np.float32).reshape(8, 8)
        down = h2v2_downsample(plane)
        assert down.shape == (4, 4)
        assert down[0, 0] == pytest.approx(plane[:2, :2].mean())

    def test_downsample_odd_raises(self):
        with pytest.raises(ValueError):
            h2v2_downsample(np.zeros((7, 8), dtype=np.float32))

    def test_upsample_doubles(self):
        plane = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        up = sep_upsample(plane)
        assert up.shape == (4, 4)
        assert up[0, 0] == up[0, 1] == up[1, 0] == up[1, 1] == 1.0
        assert up[3, 3] == 4.0

    def test_down_then_up_preserves_means(self):
        rng = np.random.default_rng(1)
        plane = rng.uniform(0, 255, size=(16, 16)).astype(np.float32)
        roundtrip = sep_upsample(h2v2_downsample(plane))
        assert roundtrip.mean() == pytest.approx(plane.mean(), rel=1e-5)
