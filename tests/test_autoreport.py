import pytest

from repro.core.lotustrace import InMemoryTraceLog, generate_report
from repro.core.lotustrace.autoreport import (
    REGIME_CONSUMER,
    REGIME_PREPROCESSING,
    SEVERITY_WARNING,
)
from repro.core.lotustrace.records import (
    KIND_BATCH_CONSUMED,
    KIND_BATCH_PREPROCESSED,
    KIND_BATCH_WAIT,
    KIND_OP,
    MAIN_PROCESS_WORKER_ID,
    OOO_MARKER_DURATION_NS,
    TraceRecord,
)
from repro.errors import TraceError
from repro.workloads import SMOKE, build_ic_pipeline, build_is_pipeline

MS = 1_000_000


def rec(kind, batch_id, start_ms, dur_ms, worker=0, name="x", ooo=False):
    return TraceRecord(
        kind=kind, name=name, batch_id=batch_id, worker_id=worker, pid=1,
        start_ns=start_ms * MS, duration_ns=int(dur_ms * MS), out_of_order=ooo,
    )


def synthetic_prep_bound_trace(n=6):
    """Batches take 50 ms to preprocess; consumer waits 40 ms each."""
    records = []
    for i in range(n):
        base = i * 50
        records.append(rec(KIND_BATCH_PREPROCESSED, i, base, 50, worker=i % 2))
        records.append(
            rec(KIND_BATCH_WAIT, i, base + 10, 40, worker=MAIN_PROCESS_WORKER_ID)
        )
        records.append(
            rec(KIND_BATCH_CONSUMED, i, base + 50, 1, worker=MAIN_PROCESS_WORKER_ID)
        )
        records.append(rec(KIND_OP, -1, base, 45, worker=i % 2, name="Loader"))
        records.append(rec(KIND_OP, -1, base + 45, 5, worker=i % 2, name="Crop"))
    return records


def synthetic_consumer_bound_trace(n=6):
    """Batches preprocessed instantly, consumed 100 ms apart."""
    records = []
    for i in range(n):
        records.append(rec(KIND_BATCH_PREPROCESSED, i, i * 5, 5, worker=0))
        records.append(
            TraceRecord(
                kind=KIND_BATCH_WAIT, name="wait", batch_id=i,
                worker_id=MAIN_PROCESS_WORKER_ID, pid=1,
                start_ns=(100 * i + 50) * MS,
                duration_ns=OOO_MARKER_DURATION_NS, out_of_order=(i > 0),
            )
        )
        records.append(
            rec(KIND_BATCH_CONSUMED, i, 100 * i + 51, 1,
                worker=MAIN_PROCESS_WORKER_ID)
        )
    return records


class TestRegimes:
    def test_preprocessing_bound_detected(self):
        report = generate_report(synthetic_prep_bound_trace())
        assert report.regime == REGIME_PREPROCESSING
        assert any(f.category == "bottleneck" and f.severity == SEVERITY_WARNING
                   for f in report.findings)

    def test_consumer_bound_detected(self):
        report = generate_report(synthetic_consumer_bound_trace())
        assert report.regime == REGIME_CONSUMER

    def test_empty_trace_raises(self):
        with pytest.raises(TraceError):
            generate_report([])


class TestFindings:
    def test_hot_operation_identified(self):
        report = generate_report(synthetic_prep_bound_trace())
        assert report.op_ranking[0] == "Loader"
        assert any(f.category == "hot-operation" for f in report.findings)

    def test_out_of_order_flagged(self):
        report = generate_report(synthetic_consumer_bound_trace())
        assert any(f.category == "out-of-order" for f in report.findings)

    def test_worker_busy_fractions(self):
        report = generate_report(synthetic_prep_bound_trace())
        assert set(report.worker_busy_fraction) == {0, 1}
        for fraction in report.worker_busy_fraction.values():
            assert 0.0 < fraction <= 1.0

    def test_format_contains_key_lines(self):
        text = generate_report(synthetic_prep_bound_trace()).format()
        assert "regime:" in text
        assert "Loader" in text


class TestOnRealPipelines:
    def test_ic_reported_preprocessing_bound(self):
        # One worker: no out-of-order queueing, so delays stay near zero
        # and the preprocessing-bound signal is unambiguous.
        log = InMemoryTraceLog()
        bundle = build_ic_pipeline(profile=SMOKE, num_workers=1, log_file=log, seed=0)
        bundle.run_epoch()
        report = generate_report(log.records())
        assert report.regime == REGIME_PREPROCESSING
        assert report.op_ranking[0] == "Loader"

    def test_is_reported_consumer_bound(self):
        log = InMemoryTraceLog()
        bundle = build_is_pipeline(profile=SMOKE, num_workers=2, log_file=log, seed=0)
        bundle.run_epoch()
        report = generate_report(log.records())
        assert report.regime == REGIME_CONSUMER
