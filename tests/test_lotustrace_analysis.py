import pytest

from repro.core.lotustrace.analysis import (
    BatchFlow,
    analyze_trace,
    out_of_order_events,
    per_op_stats,
)
from repro.core.lotustrace.records import (
    KIND_BATCH_CONSUMED,
    KIND_BATCH_PREPROCESSED,
    KIND_BATCH_WAIT,
    KIND_OP,
    MAIN_PROCESS_WORKER_ID,
    OOO_MARKER_DURATION_NS,
    TraceRecord,
)
from repro.errors import TraceError

MS = 1_000_000


def rec(kind, batch_id, start_ms, dur_ms, worker=0, name="x", ooo=False):
    return TraceRecord(
        kind=kind, name=name, batch_id=batch_id,
        worker_id=worker, pid=1, start_ns=start_ms * MS,
        duration_ns=dur_ms * MS, out_of_order=ooo,
    )


def synthetic_trace():
    """Two batches: batch 0 in-order on worker 0, batch 1 OOO on worker 1."""
    return [
        # worker 0 preprocesses batch 0 over [0, 50) with two ops inside
        rec(KIND_OP, -1, 5, 20, worker=0, name="Loader"),
        rec(KIND_OP, -1, 25, 10, worker=0, name="RandomResizedCrop"),
        rec(KIND_BATCH_PREPROCESSED, 0, 0, 50, worker=0),
        # worker 1 preprocesses batch 1 over [0, 30) - finishes first
        rec(KIND_BATCH_PREPROCESSED, 1, 0, 30, worker=1),
        # main waits for batch 0 over [10, 50)
        rec(KIND_BATCH_WAIT, 0, 10, 40, worker=MAIN_PROCESS_WORKER_ID),
        rec(KIND_BATCH_CONSUMED, 0, 51, 1, worker=MAIN_PROCESS_WORKER_ID),
        # batch 1 was cached: wait has the out-of-order marker
        TraceRecord(
            kind=KIND_BATCH_WAIT, name="wait", batch_id=1,
            worker_id=MAIN_PROCESS_WORKER_ID, pid=1,
            start_ns=53 * MS, duration_ns=OOO_MARKER_DURATION_NS,
            out_of_order=True,
        ),
        rec(KIND_BATCH_CONSUMED, 1, 54, 1, worker=MAIN_PROCESS_WORKER_ID),
    ]


class TestAnalyzeTrace:
    def test_batches_assembled(self):
        analysis = analyze_trace(synthetic_trace())
        assert set(analysis.batches) == {0, 1}
        flow = analysis.batches[0]
        assert flow.preprocess_time_ns == 50 * MS
        assert flow.wait_time_ns == 40 * MS

    def test_delay_times(self):
        analysis = analyze_trace(synthetic_trace())
        # batch 0 ready at 50, consumed at 51 -> 1 ms delay
        assert analysis.batches[0].delay_time_ns == 1 * MS
        # batch 1 ready at 30, consumed at 54 -> 24 ms delay
        assert analysis.batches[1].delay_time_ns == 24 * MS

    def test_negative_delay_clamped(self):
        flow = BatchFlow(
            0,
            preprocessed=rec(KIND_BATCH_PREPROCESSED, 0, 10, 20),
            consumed=rec(KIND_BATCH_CONSUMED, 0, 25, 1),
        )
        assert flow.delay_time_ns == 0

    def test_incomplete_flow_none_metrics(self):
        flow = BatchFlow(0)
        assert flow.preprocess_time_ns is None
        assert flow.wait_time_ns is None
        assert flow.delay_time_ns is None

    def test_op_association_by_containment(self):
        analysis = analyze_trace(synthetic_trace())
        assert analysis.op_batch_ids["Loader"] == [0]
        assert analysis.op_batch_ids["RandomResizedCrop"] == [0]

    def test_op_outside_any_fetch_span(self):
        records = [rec(KIND_OP, -1, 500, 5, worker=3, name="Orphan")]
        analysis = analyze_trace(records)
        assert analysis.op_batch_ids["Orphan"] == [-1]

    def test_out_of_order_detection(self):
        events = out_of_order_events(analyze_trace(synthetic_trace()))
        assert len(events) == 1
        assert events[0].batch_id == 1
        assert events[0].delay_ns == 24 * MS

    def test_total_preprocess_cpu(self):
        analysis = analyze_trace(synthetic_trace())
        assert analysis.total_preprocess_cpu_ns() == 80 * MS

    def test_op_total_cpu(self):
        totals = analyze_trace(synthetic_trace()).op_total_cpu_ns()
        assert totals == {"Loader": 20 * MS, "RandomResizedCrop": 10 * MS}


class TestFractions:
    def test_fraction_waits_over(self):
        analysis = analyze_trace(synthetic_trace())
        assert analysis.fraction_waits_over(30 * MS) == 0.5
        assert analysis.fraction_waits_over(100 * MS) == 0.0

    def test_fraction_delays_over(self):
        analysis = analyze_trace(synthetic_trace())
        assert analysis.fraction_delays_over(10 * MS) == 0.5

    def test_empty_fractions_raise(self):
        analysis = analyze_trace([])
        with pytest.raises(TraceError):
            analysis.fraction_waits_over(1)
        with pytest.raises(TraceError):
            analysis.fraction_delays_over(1)


class TestCollationBatchIds:
    """Collation op records carry the real batch id (no -1 placeholder).

    The worker loop and the single-process iterator scope each fetch with
    ``batch_scope``, so ``_InstrumentedCollate`` stamps the id directly
    instead of leaving attribution to span containment.
    """

    class _Dataset:
        def __len__(self):
            return 12

        def __getitem__(self, i):
            return [float(i)]

    @pytest.mark.parametrize("num_workers", [0, 2])
    def test_collation_records_carry_batch_id(self, num_workers):
        from repro.core.lotustrace.logfile import InMemoryTraceLog
        from repro.data.dataloader import COLLATION_OP_NAME, DataLoader

        log = InMemoryTraceLog()
        loader = DataLoader(
            self._Dataset(),
            batch_size=3,
            num_workers=num_workers,
            log_file=log,
        )
        for _batch in loader:
            pass
        collations = [
            r for r in log.records()
            if r.kind == KIND_OP and r.name == COLLATION_OP_NAME
        ]
        assert sorted(r.batch_id for r in collations) == [0, 1, 2, 3]
        analysis = analyze_trace(log.columns())
        assert sorted(analysis.op_batch_ids[COLLATION_OP_NAME]) == [0, 1, 2, 3]

    def test_carried_id_beats_containment(self):
        # An op stamped with batch 7 sits inside batch 0's fetch span;
        # the carried id must win in both engines.
        records = [
            rec(KIND_BATCH_PREPROCESSED, 0, 0, 50, worker=0),
            rec(KIND_OP, 7, 5, 10, worker=0, name="Collation"),
            rec(KIND_OP, -1, 20, 10, worker=0, name="Loader"),
        ]
        from repro.core.lotustrace.engine import analysis_engine

        assert analyze_trace(records).op_batch_ids["Collation"] == [7]
        assert analyze_trace(records).op_batch_ids["Loader"] == [0]
        with analysis_engine("records"):
            assert analyze_trace(records).op_batch_ids["Collation"] == [7]
            assert analyze_trace(records).op_batch_ids["Loader"] == [0]


class TestPerOpStats:
    def test_summaries(self):
        stats = per_op_stats(synthetic_trace())
        assert stats["Loader"].mean == 20 * MS
        assert stats["Loader"].count == 1

    def test_unknown_op_raises(self):
        analysis = analyze_trace(synthetic_trace())
        with pytest.raises(TraceError):
            analysis.op_summary("Missing")
