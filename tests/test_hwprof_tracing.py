"""Native-event Chrome-trace export and the combined Python+C view."""

import pytest

from repro.clib.events import CallEvent, EventRecorder, attach_recorder, detach_recorder
from repro.core.lotustrace import InMemoryTraceLog
from repro.hwprof.tracing import combined_trace, events_to_chrome


def event(function, start_us, dur_us, depth=0, thread=1, library="libjpeg.so.9"):
    return CallEvent(
        thread_id=thread, function=function, library=library,
        start_ns=start_us * 1000, duration_ns=dur_us * 1000,
        depth=depth, active_threads=1,
    )


class TestEventsToChrome:
    def test_spans_emitted(self):
        payload = events_to_chrome([event("decode_mcu", 0, 100)])
        (span,) = payload["traceEvents"]
        assert span["name"] == "decode_mcu"
        assert span["args"]["module"] == "libjpeg.so.9"
        assert span["ts"] == 0.0 and span["dur"] == 100.0

    def test_positive_ids(self):
        payload = events_to_chrome(
            [event("a", 0, 10), event("b", 20, 10)]
        )
        assert all(e["id"] > 0 for e in payload["traceEvents"])

    def test_threads_get_distinct_tids(self):
        payload = events_to_chrome(
            [event("a", 0, 10, thread=111), event("b", 0, 10, thread=222)]
        )
        tids = {e["tid"] for e in payload["traceEvents"]}
        assert len(tids) == 2

    def test_nesting_preserved_in_args(self):
        payload = events_to_chrome(
            [event("outer", 0, 100, depth=0), event("inner", 10, 20, depth=1)]
        )
        depths = {e["name"]: e["args"]["depth"] for e in payload["traceEvents"]}
        assert depths == {"outer": 0, "inner": 1}

    def test_empty(self):
        assert events_to_chrome([])["traceEvents"] == []


class TestCombinedTrace:
    def test_real_decode_combined_with_lotus_spans(self, small_blobs):
        from repro.data.dataset import BlobImageDataset
        from repro.transforms import Compose, RandomResizedCrop, ToTensor

        log = InMemoryTraceLog()
        recorder = EventRecorder()
        attach_recorder(recorder)
        try:
            dataset = BlobImageDataset(
                small_blobs[:4],
                transform=Compose(
                    [RandomResizedCrop(32, seed=0), ToTensor()],
                    log_transform_elapsed_time=log,
                ),
                log_file=log,
            )
            for index in range(4):
                dataset[index]
        finally:
            detach_recorder(recorder)

        payload = combined_trace(recorder.events(), log.records())
        names = {e["name"] for e in payload["traceEvents"]}
        assert "decode_mcu" in names  # native layer
        assert "SLoader" in names  # LotusTrace layer
        native_ids = [
            e["id"] for e in payload["traceEvents"]
            if e.get("cat") == "native" and "id" in e
        ]
        lotus_ids = [
            e["id"] for e in payload["traceEvents"]
            if e.get("cat") == "lotustrace" and "id" in e
        ]
        assert all(i > 0 for i in native_ids)
        assert all(i < 0 for i in lotus_ids)  # no collisions by construction
