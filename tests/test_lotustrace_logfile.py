import threading

import pytest

from repro.core.lotustrace.columns import (
    ParseStats,
    TraceColumns,
    parse_trace_bytes,
    parse_trace_file_columns,
)
from repro.core.lotustrace.engine import analysis_engine
from repro.core.lotustrace.logfile import (
    InMemoryTraceLog,
    LotusLogWriter,
    open_trace_log,
    parse_trace_file,
    parse_trace_lines,
)
from repro.core.lotustrace.records import KIND_OP, TraceRecord
from repro.errors import TraceError


def make_record(i=0):
    return TraceRecord(
        kind=KIND_OP, name=f"Op{i}", batch_id=-1, worker_id=0, pid=1,
        start_ns=i * 1000, duration_ns=10,
    )


class TestLotusLogWriter:
    def test_write_and_parse(self, tmp_path):
        path = tmp_path / "trace.log"
        with LotusLogWriter(path) as writer:
            writer.write(make_record(0))
            writer.write(make_record(1))
        records = parse_trace_file(path)
        assert [r.name for r in records] == ["Op0", "Op1"]

    def test_append_mode(self, tmp_path):
        path = tmp_path / "trace.log"
        with LotusLogWriter(path) as writer:
            writer.write(make_record(0))
        with LotusLogWriter(path) as writer:
            writer.write(make_record(1))
        assert len(parse_trace_file(path)) == 2

    def test_write_after_close_raises(self, tmp_path):
        writer = LotusLogWriter(tmp_path / "t.log")
        writer.close()
        with pytest.raises(TraceError):
            writer.write(make_record())

    def test_concurrent_writes_intact(self, tmp_path):
        path = tmp_path / "t.log"
        writer = LotusLogWriter(path)

        def write_many(base):
            for i in range(50):
                writer.write(make_record(base + i))

        threads = [threading.Thread(target=write_many, args=(k * 100,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        writer.close()
        records = parse_trace_file(path)
        assert len(records) == 200  # no torn lines

    def test_double_close_ok(self, tmp_path):
        writer = LotusLogWriter(tmp_path / "t.log")
        writer.close()
        writer.close()


class TestInMemoryTraceLog:
    def test_records_accumulate(self):
        log = InMemoryTraceLog()
        log.write(make_record(0))
        log.write(make_record(1))
        assert len(log.records()) == 2

    def test_records_snapshot_isolated(self):
        log = InMemoryTraceLog()
        log.write(make_record())
        snapshot = log.records()
        log.write(make_record(1))
        assert len(snapshot) == 1


class TestOpenTraceLog:
    def test_none_passthrough(self):
        assert open_trace_log(None) is None

    def test_sink_passthrough(self):
        sink = InMemoryTraceLog()
        assert open_trace_log(sink) is sink

    def test_path_opens_writer(self, tmp_path):
        sink = open_trace_log(tmp_path / "x.log")
        assert isinstance(sink, LotusLogWriter)
        sink.close()


class TestParsing:
    def test_skips_blank_lines(self):
        lines = [make_record(0).to_line(), "", "   ", make_record(1).to_line()]
        assert len(parse_trace_lines(lines)) == 2

    def test_bad_line_raises(self):
        with pytest.raises(TraceError):
            parse_trace_lines(["garbage"])

    def test_bad_line_skipped_and_counted(self):
        stats = ParseStats()
        lines = [
            make_record(0).to_line(),
            "garbage",
            make_record(1).to_line(),
            "op,Trunc,0,0,1,5",  # torn mid-write: too few fields
        ]
        records = parse_trace_lines(lines, errors="skip", stats=stats)
        assert [r.name for r in records] == ["Op0", "Op1"]
        assert stats.skipped_lines == 2

    def test_blank_lines_not_counted_as_skipped(self):
        stats = ParseStats()
        parse_trace_lines(["", "  "], errors="skip", stats=stats)
        assert stats.skipped_lines == 0

    def test_unknown_errors_mode_raises(self):
        with pytest.raises(TraceError):
            parse_trace_lines([], errors="ignore")


class TestHardenedFileParsing:
    """A log whose tail was torn mid-append must still be readable."""

    def _write_torn_log(self, path):
        lines = [make_record(i).to_line() for i in range(4)]
        torn = lines[3][: len(lines[3]) // 2]  # truncated final append
        path.write_text("\n".join(lines[:3]) + "\n" + torn)
        return path

    def test_truncated_tail_raises_by_default(self, tmp_path):
        path = self._write_torn_log(tmp_path / "torn.log")
        with pytest.raises(TraceError):
            parse_trace_file(path)
        with pytest.raises(TraceError), analysis_engine("records"):
            parse_trace_file(path)

    def test_truncated_tail_skipped_and_counted(self, tmp_path):
        path = self._write_torn_log(tmp_path / "torn.log")
        stats = ParseStats()
        records = parse_trace_file(path, errors="skip", stats=stats)
        assert [r.name for r in records] == ["Op0", "Op1", "Op2"]
        assert stats.skipped_lines == 1

    def test_skip_semantics_match_between_engines(self, tmp_path):
        path = self._write_torn_log(tmp_path / "torn.log")
        columnar_stats, record_stats = ParseStats(), ParseStats()
        columnar = parse_trace_file(path, errors="skip", stats=columnar_stats)
        with analysis_engine("records"):
            oracle = parse_trace_file(path, errors="skip", stats=record_stats)
        assert columnar == oracle
        assert columnar_stats.skipped_lines == record_stats.skipped_lines

    def test_columns_roundtrip_matches_oracle(self, tmp_path):
        path = tmp_path / "trace.log"
        with LotusLogWriter(path) as writer:
            for i in range(10):
                writer.write(make_record(i))
        cols = parse_trace_file_columns(path)
        assert isinstance(cols, TraceColumns)
        with analysis_engine("records"):
            oracle = parse_trace_file(path)
        assert cols.to_records() == oracle

    def test_parse_bytes_corrupt_middle_line(self):
        good = [make_record(i).to_line() for i in range(3)]
        blob = (good[0] + "\nnot,a,record\n" + good[1] + "\n" + good[2] + "\n").encode()
        with pytest.raises(TraceError):
            parse_trace_bytes(blob)
        stats = ParseStats()
        cols = parse_trace_bytes(blob, errors="skip", stats=stats)
        assert len(cols) == 3
        assert stats.skipped_lines == 1
