"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lotustrace.records import TraceRecord
from repro.imaging.jpeg.codec import decode_sjpg, encode_sjpg, peek_header
from repro.imaging.jpeg.dct import (
    blocks_to_plane,
    forward_dct,
    jpeg_idct_islow,
    plane_to_blocks,
)
from repro.imaging.jpeg.entropy import decode_mcu, encode_mcu_huff
from repro.imaging.jpeg.tables import UNZIGZAG, ZIGZAG
from repro.tensor.collate import default_collate
from repro.utils.stats import fraction_below, iqr, percentile, summarize
from repro.utils.timeunits import format_ns

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestStatsProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_percentile_within_range(self, values):
        for q in (0, 25, 50, 75, 100):
            p = percentile(values, q)
            assert min(values) <= p <= max(values)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_percentile_monotone_in_q(self, values):
        import math

        points = [percentile(values, q) for q in (0, 10, 50, 90, 100)]
        for a, b in zip(points, points[1:]):
            # Interpolation may lose one ulp; monotone up to rounding.
            assert b >= a or math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-300)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_summary_invariants(self, values):
        import math

        def leq(a, b):
            # Mean accumulation can lose one ulp vs min/max.
            return a <= b or math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-300)

        s = summarize(values)
        assert leq(s.minimum, s.median) and leq(s.median, s.maximum)
        assert leq(s.minimum, s.mean) and leq(s.mean, s.maximum)
        assert s.std >= 0
        assert s.iqr >= 0
        assert s.count == len(values)

    @given(st.lists(finite_floats, min_size=1, max_size=100), finite_floats)
    def test_fraction_below_bounds(self, values, threshold):
        assert 0.0 <= fraction_below(values, threshold) <= 1.0

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_iqr_nonnegative_and_translation_invariant(self, values):
        assert iqr(values) >= 0
        shifted = [v + 100.0 for v in values]
        assert iqr(shifted) == pytest.approx(iqr(values), abs=1e-6)


class TestTimeunitsProperties:
    @given(st.integers(min_value=-10**15, max_value=10**15))
    def test_format_never_crashes(self, ns):
        text = format_ns(ns)
        assert isinstance(text, str) and text


class TestZigzagProperties:
    def test_zigzag_is_permutation(self):
        assert sorted(ZIGZAG.tolist()) == list(range(64))

    @given(st.integers(min_value=0, max_value=63))
    def test_unzigzag_inverts(self, index):
        assert UNZIGZAG[ZIGZAG[index]] == index


class TestTraceRecordProperties:
    @given(
        kind=st.sampled_from(
            ["op", "batch_preprocessed", "batch_wait", "batch_consumed"]
        ),
        name=st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd"), min_codepoint=33
            ),
            min_size=1,
            max_size=30,
        ),
        batch_id=st.integers(min_value=-1, max_value=10**6),
        worker_id=st.integers(min_value=-1, max_value=100),
        pid=st.integers(min_value=0, max_value=2**22),
        start_ns=st.integers(min_value=0, max_value=2**62),
        duration_ns=st.integers(min_value=0, max_value=2**40),
        ooo=st.booleans(),
    )
    def test_line_roundtrip(self, kind, name, batch_id, worker_id, pid,
                            start_ns, duration_ns, ooo):
        record = TraceRecord(
            kind=kind, name=name, batch_id=batch_id, worker_id=worker_id,
            pid=pid, start_ns=start_ns, duration_ns=duration_ns,
            out_of_order=ooo,
        )
        assert TraceRecord.from_line(record.to_line()) == record


class TestEntropyProperties:
    @given(
        data=st.data(),
        n_blocks=st.integers(min_value=1, max_value=40),
        density=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_entropy_roundtrip(self, data, n_blocks, density):
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        blocks = np.zeros((n_blocks, 8, 8), dtype=np.int16)
        mask = rng.random(size=blocks.shape) < density
        count = int(mask.sum())
        if count:
            blocks[mask] = rng.integers(-1000, 1000, size=count, dtype=np.int16)
        assert np.array_equal(decode_mcu(encode_mcu_huff(blocks), n_blocks), blocks)


class TestDctProperties:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_dct_roundtrip_error_bounded(self, seed):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(0, 256, size=(3, 8, 8)).astype(np.float64)
        restored = jpeg_idct_islow(forward_dct(blocks))
        assert np.abs(restored.astype(int) - blocks.astype(int)).max() <= 1

    @given(
        rows=st.integers(min_value=1, max_value=6),
        cols=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_blocking_roundtrip(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        plane = rng.uniform(0, 255, size=(rows * 8, cols * 8))
        blocks = plane_to_blocks(plane)
        assert np.array_equal(blocks_to_plane(blocks, rows * 8, cols * 8), plane)


class TestCodecProperties:
    @given(
        height=st.integers(min_value=8, max_value=80),
        width=st.integers(min_value=8, max_value=80),
        quality=st.integers(min_value=20, max_value=95),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_decode_restores_shape_and_header(self, height, width, quality, seed):
        rng = np.random.default_rng(seed)
        image = rng.integers(0, 256, size=(height, width, 3), dtype=np.uint8)
        blob = encode_sjpg(image, quality=quality)
        header = peek_header(blob)
        assert header.size == (width, height)
        decoded = decode_sjpg(blob)
        assert decoded.shape == image.shape
        assert decoded.dtype == np.uint8


class TestCollateProperties:
    @given(
        batch=st.integers(min_value=1, max_value=8),
        dims=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_collate_stacks_any_shape(self, batch, dims, seed):
        rng = np.random.default_rng(seed)
        samples = [rng.normal(size=tuple(dims)) for _ in range(batch)]
        out = default_collate(samples)
        assert out.shape == (batch, *dims)
        for i, sample in enumerate(samples):
            assert np.array_equal(out.numpy()[i], sample)
