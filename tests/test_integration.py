"""Cross-module integration tests: the full Lotus workflow end to end."""

import json
import os

import numpy as np
import pytest

from repro.core.lotusmap import Mapping, attribute_counters
from repro.core.lotustrace import (
    analyze_trace,
    parse_trace_file,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.datasets.synthetic import SyntheticImageNet
from repro.experiments.common import build_ic_mapping, scaled_vtune
from repro.workloads import SMOKE, build_ic_pipeline, build_is_pipeline


class TestFileBackedTraceWorkflow:
    """The paper's user workflow: pass a log file path through the APIs,
    run an epoch, analyze and visualize the written trace."""

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "lotustrace.log"
        bundle = build_ic_pipeline(
            profile=SMOKE, num_workers=2, n_gpus=1, log_file=str(path), seed=0
        )
        bundle.run_epoch()
        return str(path)

    def test_log_file_written(self, trace_path):
        assert os.path.getsize(trace_path) > 0

    def test_parse_and_analyze(self, trace_path):
        analysis = analyze_trace(parse_trace_file(trace_path))
        assert analysis.batches
        assert analysis.op_durations
        ops = set(analysis.op_durations)
        assert {"Loader", "RandomResizedCrop", "Collation"} <= ops

    def test_batch_flow_complete(self, trace_path):
        analysis = analyze_trace(parse_trace_file(trace_path))
        for flow in analysis.batches.values():
            assert flow.preprocessed is not None
            assert flow.wait is not None
            assert flow.consumed is not None

    def test_chrome_trace_export(self, trace_path, tmp_path):
        records = parse_trace_file(trace_path)
        out = tmp_path / "viz_file.lotustrace"
        write_chrome_trace(records, out, coarse=True)
        payload = json.loads(out.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert any(name.startswith("SBatchPreprocessed_") for name in names)
        assert any(name.startswith("SBatchWait_") for name in names)

    def test_op_to_batch_association(self, trace_path):
        analysis = analyze_trace(parse_trace_file(trace_path))
        loader_batches = analysis.op_batch_ids["Loader"]
        assert any(batch_id >= 0 for batch_id in loader_batches)


class TestLotusEndToEnd:
    """LotusTrace + LotusMap combined: the Figure 6 methodology on one
    configuration."""

    @pytest.fixture(scope="class")
    def mapping(self):
        return build_ic_mapping(lambda: scaled_vtune(seed=1), runs=8, seed=1)

    def test_mapping_covers_pipeline_ops(self, mapping):
        assert {"Loader", "RandomResizedCrop", "ToTensor", "Normalize",
                "Collation"} <= set(mapping.operations())

    def test_mapping_json_roundtrip(self, mapping, tmp_path):
        path = tmp_path / "mapping_funcs.json"
        mapping.save(path)
        assert Mapping.load(path).operations() == mapping.operations()

    def test_counter_attribution_from_live_run(self, mapping):
        from repro.core.lotustrace import InMemoryTraceLog
        from repro.experiments.common import run_traced_epoch

        log = InMemoryTraceLog()
        bundle = build_ic_pipeline(
            profile=SMOKE, num_workers=2, log_file=log, seed=2
        )
        profiler = scaled_vtune(seed=2)
        profiler.start()
        try:
            analysis = run_traced_epoch(bundle)
        finally:
            profile = profiler.stop()
        filtered = profile.filter(
            lambda row: mapping.is_preprocessing_function(row.function)
        )
        attributed = attribute_counters(
            filtered, mapping, analysis.op_total_cpu_ns()
        )
        # Loader dominates the IC pipeline's CPU time at the hardware
        # level, matching the LotusTrace view.
        assert attributed["Loader"].cpu_time_ns == max(
            counters.cpu_time_ns for counters in attributed.values()
        )
        total_attr = sum(c.cpu_time_ns for c in attributed.values())
        assert total_attr == pytest.approx(filtered.total_cpu_time_ns(), rel=1e-6)


class TestSegmentationEndToEnd:
    def test_is_pipeline_with_file_log(self, tmp_path):
        path = tmp_path / "is.log"
        bundle = build_is_pipeline(
            profile=SMOKE, num_workers=2, log_file=str(path), seed=3
        )
        report = bundle.run_epoch()
        assert report.n_batches > 0
        analysis = analyze_trace(parse_trace_file(path))
        assert "RandBalancedCrop" in analysis.op_durations


class TestDeterminism:
    def test_same_seed_same_dataset_and_schedule(self):
        def run(seed):
            dataset = SyntheticImageNet(12, seed=seed)
            bundle = build_ic_pipeline(
                dataset=dataset, profile=SMOKE, num_workers=0, seed=seed
            )
            return [
                batch[0].numpy().sum() for batch in bundle.loader
            ]

        assert run(9) == run(9)
        assert run(9) != run(10)
