import numpy as np
import pytest

from repro.clib.events import CallEvent
from repro.errors import ProfilerError
from repro.hwprof.sampling import (
    INTERPRETER_SYMBOLS,
    build_leaf_segments,
    replay_samples,
)

US = 1_000


def event(function, start_us, dur_us, depth=0, thread=1, library="lib", active=1):
    return CallEvent(
        thread_id=thread, function=function, library=library,
        start_ns=start_us * US, duration_ns=dur_us * US,
        depth=depth, active_threads=active,
    )


class TestLeafSegments:
    def test_flat_events(self):
        segments = build_leaf_segments([event("a", 0, 10), event("b", 20, 10)])[1]
        assert [(s.function, s.start_ns, s.end_ns) for s in segments] == [
            ("a", 0, 10 * US),
            ("b", 20 * US, 30 * US),
        ]

    def test_nested_self_time_carved_out(self):
        events = [
            event("outer", 0, 100, depth=0),
            event("inner", 20, 30, depth=1),
        ]
        segments = build_leaf_segments(events)[1]
        spans = sorted((s.function, s.start_ns, s.end_ns) for s in segments)
        assert ("inner", 20 * US, 50 * US) in spans
        assert ("outer", 0, 20 * US) in spans
        assert ("outer", 50 * US, 100 * US) in spans

    def test_leaf_stack_path(self):
        events = [
            event("outer", 0, 100, depth=0),
            event("inner", 10, 50, depth=1),
            event("leaf", 20, 10, depth=2),
        ]
        segments = build_leaf_segments(events)[1]
        leaf = next(s for s in segments if s.function == "leaf")
        assert [frame[0] for frame in leaf.stack] == ["outer", "inner", "leaf"]

    def test_threads_separated(self):
        segments = build_leaf_segments(
            [event("a", 0, 10, thread=1), event("b", 0, 10, thread=2)]
        )
        assert set(segments) == {1, 2}

    def test_child_covering_whole_parent(self):
        events = [event("outer", 0, 10, depth=0), event("inner", 0, 10, depth=1)]
        segments = build_leaf_segments(events)[1]
        assert [s.function for s in segments] == ["inner"]

    def test_sibling_children(self):
        events = [
            event("outer", 0, 100, depth=0),
            event("c1", 0, 40, depth=1),
            event("c2", 60, 40, depth=1),
        ]
        functions = sorted(
            s.function for s in build_leaf_segments(events)[1]
        )
        assert functions == ["c1", "c2", "outer"]


class TestReplaySamples:
    def test_sample_count_tracks_duration(self):
        events = [event("long", 0, 10_000)]  # 10 ms
        samples = replay_samples(events, interval_ns=1000 * US, rng=np.random.default_rng(0))
        assert 8 <= len(samples) <= 11

    def test_short_function_capture_probability(self):
        # f = 100 us under s = 1000 us: capture chance ~10% per run.
        rng = np.random.default_rng(1)
        captures = 0
        runs = 400
        for run in range(runs):
            events = [event("short", run * 100_000, 100)]
            samples = replay_samples(events, interval_ns=1000 * US, rng=rng,
                                     thread_activity_pad_ns=1000 * US)
            captures += any(
                s.segment is not None and s.segment.function == "short"
                for s in samples
            )
        assert 0.04 < captures / runs < 0.25

    def test_long_function_always_captured(self):
        events = [event("long", 0, 5000)]
        samples = replay_samples(events, interval_ns=1000 * US, rng=np.random.default_rng(2))
        assert any(s.identity[0] == "long" for s in samples)

    def test_gap_samples_hit_interpreter(self):
        events = [event("a", 0, 100), event("b", 9000, 100)]
        samples = replay_samples(events, interval_ns=500 * US, rng=np.random.default_rng(3))
        idle = [s for s in samples if s.segment is None]
        assert idle
        assert all(s.interpreter_symbol in INTERPRETER_SYMBOLS for s in idle)

    def test_skid_attributes_stale_function(self):
        # Two adjacent functions; with skid always on and a skid window
        # larger than b's offset coverage, early-b samples report a.
        events = [event("a", 0, 1000), event("b", 1000, 1000)]
        samples = replay_samples(
            events, interval_ns=100 * US, rng=np.random.default_rng(4),
            skid_ns=150 * US, skid_probability=1.0,
        )
        stale = [
            s for s in samples
            if s.skidded and s.segment.function == "a" and s.t_ns >= 1000 * US
        ]
        assert stale  # misattribution occurred

    def test_no_skid_with_gap(self):
        # A sleep gap wider than the skid window: early-b samples find
        # nothing at t - skid and report b correctly.
        events = [event("a", 0, 1000), event("b", 2000, 1000)]
        samples = replay_samples(
            events, interval_ns=100 * US, rng=np.random.default_rng(5),
            skid_ns=150 * US, skid_probability=1.0,
        )
        b_samples = [s for s in samples if s.t_ns >= 2000 * US and s.segment is not None]
        assert b_samples
        mislabeled = [s for s in b_samples if s.segment.function == "a" and s.t_ns >= 2150 * US]
        assert not mislabeled

    def test_validation(self):
        with pytest.raises(ProfilerError):
            replay_samples([], interval_ns=0, rng=np.random.default_rng(0))
        with pytest.raises(ProfilerError):
            replay_samples([], interval_ns=10, rng=np.random.default_rng(0),
                           skid_probability=2.0)

    def test_deterministic_given_rng(self):
        events = [event("f", 0, 5000)]
        a = replay_samples(events, interval_ns=700 * US, rng=np.random.default_rng(9))
        b = replay_samples(events, interval_ns=700 * US, rng=np.random.default_rng(9))
        assert [(s.t_ns, s.identity) for s in a] == [(s.t_ns, s.identity) for s in b]
