"""persistent_workers: one worker pool reused across epochs."""

import threading

import numpy as np
import pytest

from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.data.worker_info import ShardedIterableDataset
from repro.errors import DataLoaderError


class CountingDataset(Dataset):
    """Counts distinct fetching threads across its lifetime.

    Thread *objects* are retained (not ids): keeping the reference alive
    guarantees distinct workers never alias through identifier reuse.
    """

    def __init__(self, n=16):
        self._n = n
        self.threads = set()
        self._lock = threading.Lock()

    @property
    def thread_ids(self):
        return self.threads

    def __getitem__(self, index):
        with self._lock:
            self.threads.add(threading.current_thread())
        return np.array([float(index)])

    def __len__(self):
        return self._n


class TestPersistentWorkers:
    def test_multiple_epochs_correct(self):
        dataset = CountingDataset(12)
        loader = DataLoader(
            dataset, batch_size=4, num_workers=2, persistent_workers=True
        )
        for _ in range(3):
            values = sorted(
                v for batch in loader for v in batch.numpy().ravel().tolist()
            )
            assert values == [float(i) for i in range(12)]
        loader.close()

    def test_workers_reused_across_epochs(self):
        dataset = CountingDataset(8)
        loader = DataLoader(
            dataset, batch_size=4, num_workers=2, persistent_workers=True
        )
        for _ in range(4):
            list(loader)
        loader.close()
        # 2 persistent workers -> 2 fetching threads total, not 8.
        assert len(dataset.thread_ids) == 2

    def test_without_persistence_workers_restart(self):
        # Hold each epoch's iterator so its worker threads stay alive and
        # their identifiers cannot be recycled for the next epoch.
        dataset = CountingDataset(8)
        loader = DataLoader(dataset, batch_size=4, num_workers=2)
        iterators = []
        for _ in range(3):
            iterator = iter(loader)
            iterators.append(iterator)
            list(iterator)
        assert len(dataset.thread_ids) == 6  # 2 fresh threads per epoch

    def test_abandoned_epoch_recreates_pool(self):
        dataset = CountingDataset(40)
        loader = DataLoader(
            dataset, batch_size=2, num_workers=2, persistent_workers=True
        )
        iterator = iter(loader)
        next(iterator)
        iterator.close()  # mid-epoch abandon: pool is dirty
        values = sorted(
            v for batch in loader for v in batch.numpy().ravel().tolist()
        )
        assert values == [float(i) for i in range(40)]
        loader.close()

    def test_shuffle_fresh_permutation_per_epoch(self):
        loader = DataLoader(
            CountingDataset(24), batch_size=4, num_workers=2,
            persistent_workers=True, shuffle=True, seed=1,
        )
        epoch1 = [tuple(b.numpy().ravel()) for b in loader]
        epoch2 = [tuple(b.numpy().ravel()) for b in loader]
        loader.close()
        assert epoch1 != epoch2
        assert sorted(sum((list(t) for t in epoch1), [])) == sorted(
            sum((list(t) for t in epoch2), [])
        )

    def test_close_idempotent(self):
        loader = DataLoader(
            CountingDataset(4), batch_size=2, num_workers=1,
            persistent_workers=True,
        )
        list(loader)
        loader.close()
        loader.close()

    def test_iteration_after_close_restarts_pool(self):
        dataset = CountingDataset(6)
        loader = DataLoader(
            dataset, batch_size=3, num_workers=1, persistent_workers=True
        )
        list(loader)
        loader.close()
        assert len(list(loader)) == 2
        loader.close()

    def test_validation(self):
        with pytest.raises(DataLoaderError):
            DataLoader(CountingDataset(4), num_workers=0, persistent_workers=True)
        with pytest.raises(DataLoaderError):
            DataLoader(
                ShardedIterableDataset([1, 2]), num_workers=1,
                persistent_workers=True,
            )
