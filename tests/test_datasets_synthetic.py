import io

import numpy as np
import pytest

from repro.datasets.synthetic import (
    SizeDistribution,
    SyntheticCoco,
    SyntheticImageNet,
    SyntheticKits19,
    VolumePairDataset,
    numpy_volume_loader,
)
from repro.errors import ReproError
from repro.imaging.jpeg.codec import peek_header


class TestSizeDistribution:
    def test_draw_within_bounds(self):
        dist = SizeDistribution(median_side=100, min_side=50, max_side=200)
        rng = np.random.default_rng(0)
        for _ in range(200):
            h, w = dist.draw(rng)
            assert 50 <= h <= 200
            assert 50 <= w <= 200

    def test_sizes_vary(self):
        dist = SizeDistribution()
        rng = np.random.default_rng(1)
        sides = {dist.draw(rng)[0] for _ in range(50)}
        assert len(sides) > 10


class TestSyntheticImageNet:
    def test_deterministic(self):
        a = SyntheticImageNet(5, seed=3)
        b = SyntheticImageNet(5, seed=3)
        assert a.blobs == b.blobs
        assert a.labels == b.labels

    def test_different_seed_differs(self):
        assert SyntheticImageNet(3, seed=1).blobs != SyntheticImageNet(3, seed=2).blobs

    def test_blobs_decodable(self):
        dataset = SyntheticImageNet(4, seed=0)
        for blob in dataset.blobs:
            header = peek_header(blob)
            assert header.width >= 48

    def test_labels_in_range(self):
        dataset = SyntheticImageNet(20, n_classes=4, seed=5)
        assert all(0 <= label < 4 for label in dataset.labels)

    def test_file_size_heterogeneity(self):
        dataset = SyntheticImageNet(60, seed=6)
        summary = dataset.file_size_summary()
        # The paper's ImageNet: std comparable to the mean (CV ~ 1.2).
        assert summary.std / summary.mean > 0.3

    def test_write_image_folder(self, tmp_path):
        dataset = SyntheticImageNet(6, n_classes=2, seed=7)
        dataset.write_image_folder(tmp_path)
        files = list(tmp_path.rglob("*.sjpg"))
        assert len(files) == 6

    def test_validation(self):
        with pytest.raises(ReproError):
            SyntheticImageNet(0)
        with pytest.raises(ReproError):
            SyntheticImageNet(1, n_classes=0)
        with pytest.raises(ReproError):
            SyntheticImageNet(1, quality_range=(0, 50))


class TestSyntheticKits19:
    def test_case_shapes_vary(self):
        cases = SyntheticKits19(6, seed=0)
        depths = set()
        for image_blob, label_blob in cases.case_blobs:
            image = np.load(io.BytesIO(image_blob))
            label = np.load(io.BytesIO(label_blob))
            assert image.shape == label.shape[:1] + image.shape[1:]
            assert image.ndim == 4
            depths.add(image.shape[1])
        assert len(depths) > 1  # heterogeneous depths drive variance

    def test_labels_have_foreground(self):
        cases = SyntheticKits19(3, seed=1)
        for _, label_blob in cases.case_blobs:
            assert np.load(io.BytesIO(label_blob)).sum() > 0

    def test_deterministic(self):
        assert (
            SyntheticKits19(2, seed=4).case_blobs
            == SyntheticKits19(2, seed=4).case_blobs
        )


class TestVolumePairDataset:
    def test_getitem_loads_pair(self):
        cases = SyntheticKits19(3, seed=2)
        ds = VolumePairDataset(cases)
        image, label = ds[0]
        assert image.ndim == 4
        assert label.ndim == 4
        assert len(ds) == 3

    def test_transform_applied(self):
        cases = SyntheticKits19(2, seed=3)
        ds = VolumePairDataset(cases, transform=lambda pair: "done")
        assert ds[0] == "done"

    def test_loader_logging(self):
        from repro.core.lotustrace import InMemoryTraceLog

        log = InMemoryTraceLog()
        ds = VolumePairDataset(SyntheticKits19(2, seed=4), log_file=log)
        ds[0]
        assert log.records()[0].name == "Loader"


class TestSyntheticCoco:
    def test_targets_well_formed(self):
        coco = SyntheticCoco(5, seed=0)
        assert len(coco) == 5
        for blob, target in zip(coco.blobs, coco.targets):
            header = peek_header(blob)
            boxes = target["boxes"]
            assert boxes.shape[1] == 4
            assert (boxes[:, 2] <= header.width).all()
            assert (boxes[:, 3] <= header.height).all()
            assert (boxes[:, 2] >= boxes[:, 0]).all()

    def test_box_counts_vary(self):
        coco = SyntheticCoco(12, max_boxes=6, seed=1)
        counts = {len(t["boxes"]) for t in coco.targets}
        assert len(counts) > 1

    def test_deterministic(self):
        assert SyntheticCoco(3, seed=5).blobs == SyntheticCoco(3, seed=5).blobs
