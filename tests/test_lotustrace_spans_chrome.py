import json

import pytest

from repro.core.lotustrace.chrometrace import (
    augment_profiler_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.core.lotustrace.records import (
    KIND_BATCH_CONSUMED,
    KIND_BATCH_PREPROCESSED,
    KIND_BATCH_WAIT,
    KIND_OP,
    MAIN_PROCESS_WORKER_ID,
    TraceRecord,
)
from repro.core.lotustrace.spans import Span, build_spans, span_name
from repro.errors import TraceError

MS = 1_000_000


def rec(kind, batch_id, start_ms, dur_ms, worker=0, name="x"):
    return TraceRecord(
        kind=kind, name=name, batch_id=batch_id, worker_id=worker,
        pid=1, start_ns=start_ms * MS, duration_ns=dur_ms * MS,
    )


TRACE = [
    rec(KIND_BATCH_PREPROCESSED, 0, 0, 50, worker=1),
    rec(KIND_OP, -1, 5, 10, worker=1, name="Loader"),
    rec(KIND_BATCH_WAIT, 0, 10, 40, worker=MAIN_PROCESS_WORKER_ID),
    rec(KIND_BATCH_CONSUMED, 0, 51, 1, worker=MAIN_PROCESS_WORKER_ID),
]


class TestSpanNames:
    def test_paper_naming_scheme(self):
        assert span_name(rec(KIND_BATCH_PREPROCESSED, 3, 0, 1)) == "SBatchPreprocessed_3"
        assert span_name(rec(KIND_BATCH_WAIT, 3, 0, 1)) == "SBatchWait_3"
        assert span_name(rec(KIND_BATCH_CONSUMED, 3, 0, 1)) == "SBatchConsumed_3"
        assert span_name(rec(KIND_OP, -1, 0, 1, name="ToTensor")) == "SToTensor"


class TestBuildSpans:
    def test_tracks(self):
        spans = build_spans(TRACE)
        tracks = {span.name: span.track for span in spans}
        assert tracks["SBatchPreprocessed_0"] == "worker:1"
        assert tracks["SBatchWait_0"] == "main"

    def test_coarse_excludes_ops(self):
        spans = build_spans(TRACE, include_ops=False)
        assert all(span.kind != KIND_OP for span in spans)
        assert len(spans) == 3

    def test_fine_includes_ops(self):
        spans = build_spans(TRACE, include_ops=True)
        assert any(span.name == "SLoader" for span in spans)

    def test_sorted_by_start(self):
        spans = build_spans(TRACE)
        starts = [span.start_ns for span in spans]
        assert starts == sorted(starts)


class TestChromeTrace:
    def test_events_use_negative_ids(self):
        payload = to_chrome_trace(TRACE)
        ids = [e["id"] for e in payload["traceEvents"] if "id" in e]
        assert ids and all(i < 0 for i in ids)

    def test_flow_arrow_present(self):
        payload = to_chrome_trace(TRACE)
        phases = [e["ph"] for e in payload["traceEvents"]]
        assert "s" in phases and "f" in phases  # producer -> consumer arrow

    def test_flow_arrow_spans_delay(self):
        payload = to_chrome_trace(TRACE)
        start = next(e for e in payload["traceEvents"] if e["ph"] == "s")
        finish = next(e for e in payload["traceEvents"] if e["ph"] == "f")
        assert start["ts"] == pytest.approx(50 * 1000)  # preprocessed end (us)
        assert finish["ts"] == pytest.approx(51 * 1000)  # consumed start

    def test_timestamps_in_microseconds(self):
        payload = to_chrome_trace(TRACE)
        span = next(
            e for e in payload["traceEvents"] if e["name"] == "SBatchPreprocessed_0"
        )
        assert span["ts"] == pytest.approx(0.0)
        assert span["dur"] == pytest.approx(50 * 1000)

    def test_coarse_mode(self):
        payload = to_chrome_trace(TRACE, coarse=True)
        names = [e["name"] for e in payload["traceEvents"]]
        assert "SLoader" not in names

    def test_positive_start_id_rejected(self):
        with pytest.raises(TraceError):
            to_chrome_trace(TRACE, start_id=1)

    def test_write_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(TRACE, path)
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload


class TestAugmentation:
    def test_merges_below_existing_ids(self):
        host = {"traceEvents": [{"name": "op", "ph": "X", "id": 12, "ts": 0}]}
        merged = augment_profiler_trace(host, TRACE)
        ids = [e.get("id") for e in merged["traceEvents"] if "id" in e]
        lotus_ids = [i for i in ids if i != 12]
        assert all(i < 0 for i in lotus_ids)
        assert 12 in ids  # host events preserved

    def test_host_untouched(self):
        host = {"traceEvents": []}
        merged = augment_profiler_trace(host, TRACE)
        assert host["traceEvents"] == []
        assert len(merged["traceEvents"]) > 0

    def test_negative_existing_ids_avoided(self):
        host = {"traceEvents": [{"name": "x", "id": -5, "ts": 0}]}
        merged = augment_profiler_trace(host, TRACE)
        lotus_ids = [e["id"] for e in merged["traceEvents"] if e.get("id", 0) < -5]
        assert lotus_ids  # new ids start below -5

    def test_missing_trace_events_raises(self):
        with pytest.raises(TraceError):
            augment_profiler_trace({}, TRACE)
