import numpy as np
import pytest

from repro.imaging.jpeg.dct import (
    blocks_to_plane,
    dequantize_blocks,
    forward_dct,
    jpeg_idct_16x16,
    jpeg_idct_islow,
    plane_to_blocks,
    quantize_blocks,
)
from repro.imaging.jpeg.tables import BLOCK, LUMA_QUANT_BASE, quant_table


class TestBlocking:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        plane = rng.integers(0, 256, size=(32, 48)).astype(np.float64)
        blocks = plane_to_blocks(plane)
        assert blocks.shape == (24, 8, 8)
        restored = blocks_to_plane(blocks, 32, 48)
        assert np.array_equal(restored, plane)

    def test_block_order_row_major(self):
        plane = np.arange(16 * 16).reshape(16, 16).astype(np.float64)
        blocks = plane_to_blocks(plane)
        # First block is the top-left 8x8 region.
        assert np.array_equal(blocks[0], plane[:8, :8])
        assert np.array_equal(blocks[1], plane[:8, 8:])

    def test_non_multiple_raises(self):
        with pytest.raises(ValueError):
            plane_to_blocks(np.zeros((10, 16)))

    def test_bad_tiling_raises(self):
        with pytest.raises(ValueError):
            blocks_to_plane(np.zeros((3, 8, 8)), 16, 16)


class TestDct:
    def test_forward_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 256, size=(5, 8, 8)).astype(np.float64)
        coeffs = forward_dct(blocks)
        restored = jpeg_idct_islow(coeffs)
        assert np.abs(restored.astype(int) - blocks.astype(int)).max() <= 1

    def test_dc_coefficient_is_shifted_mean(self):
        blocks = np.full((1, 8, 8), 200.0)
        coeffs = forward_dct(blocks)
        # DC = 8 * (mean - 128) for the orthonormal transform.
        assert coeffs[0, 0, 0] == pytest.approx(8 * (200 - 128))
        assert np.abs(coeffs[0]).sum() == pytest.approx(abs(coeffs[0, 0, 0]))

    def test_idct_output_uint8_clipped(self):
        coeffs = forward_dct(np.full((1, 8, 8), 255.0)) * 1.5  # overdrive
        out = jpeg_idct_islow(coeffs)
        assert out.dtype == np.uint8
        assert out.max() <= 255

    def test_idct_16x16_upscales(self):
        blocks = np.full((2, 8, 8), 100.0)
        coeffs = forward_dct(blocks)
        up = jpeg_idct_16x16(coeffs)
        assert up.shape == (2, 16, 16)
        # DC-only block: the upscaled block keeps the mean value.
        assert np.abs(up.astype(float) - 100.0).max() <= 1.0

    def test_idct_16x16_preserves_gradient_shape(self):
        gradient = np.tile(np.linspace(0, 248, 8), (8, 1))[None]
        coeffs = forward_dct(gradient)
        up = jpeg_idct_16x16(coeffs).astype(float)[0]
        # Monotone left-to-right on average.
        col_means = up.mean(axis=0)
        assert col_means[-1] > col_means[0] + 100


class TestQuantization:
    def test_quantize_dequantize_bounded_error(self):
        rng = np.random.default_rng(2)
        blocks = forward_dct(rng.integers(0, 256, size=(4, 8, 8)).astype(np.float64))
        table = quant_table(LUMA_QUANT_BASE, 85)
        quantized = quantize_blocks(blocks, table)
        assert quantized.dtype == np.int16
        restored = dequantize_blocks(quantized, table)
        assert np.abs(restored - blocks).max() <= table.max() / 2 + 1e-9

    def test_higher_quality_finer_tables(self):
        coarse = quant_table(LUMA_QUANT_BASE, 30)
        fine = quant_table(LUMA_QUANT_BASE, 90)
        assert fine.mean() < coarse.mean()

    def test_quality_bounds(self):
        with pytest.raises(ValueError):
            quant_table(LUMA_QUANT_BASE, 0)
        with pytest.raises(ValueError):
            quant_table(LUMA_QUANT_BASE, 101)

    def test_table_clipped_to_byte_range(self):
        table = quant_table(LUMA_QUANT_BASE, 1)
        assert table.max() <= 255
        assert table.min() >= 1
