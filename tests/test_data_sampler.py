import pytest

from repro.data.sampler import BatchSampler, RandomSampler, SequentialSampler
from repro.errors import DataLoaderError


class FakeSized:
    def __init__(self, n):
        self._n = n

    def __len__(self):
        return self._n


class TestSequentialSampler:
    def test_order(self):
        assert list(SequentialSampler(FakeSized(5))) == [0, 1, 2, 3, 4]

    def test_len(self):
        assert len(SequentialSampler(FakeSized(7))) == 7

    def test_empty(self):
        assert list(SequentialSampler(FakeSized(0))) == []


class TestRandomSampler:
    def test_permutation_covers_all(self):
        indices = list(RandomSampler(FakeSized(20), seed=1))
        assert sorted(indices) == list(range(20))

    def test_seeded_reproducible(self):
        a = list(RandomSampler(FakeSized(10), seed=3))
        b = list(RandomSampler(FakeSized(10), seed=3))
        assert a == b

    def test_fresh_permutation_each_epoch(self):
        sampler = RandomSampler(FakeSized(30), seed=4)
        first = list(sampler)
        second = list(sampler)
        assert sorted(first) == sorted(second)
        assert first != second  # overwhelmingly likely for n=30

    def test_yields_python_ints(self):
        for index in RandomSampler(FakeSized(3), seed=0):
            assert type(index) is int


class TestBatchSampler:
    def test_batching(self):
        batches = list(BatchSampler(SequentialSampler(FakeSized(7)), 3))
        assert batches == [[0, 1, 2], [3, 4, 5], [6]]

    def test_drop_last(self):
        batches = list(BatchSampler(SequentialSampler(FakeSized(7)), 3, drop_last=True))
        assert batches == [[0, 1, 2], [3, 4, 5]]

    def test_len_with_and_without_drop(self):
        sampler = SequentialSampler(FakeSized(10))
        assert len(BatchSampler(sampler, 3)) == 4
        assert len(BatchSampler(sampler, 3, drop_last=True)) == 3

    def test_exact_division(self):
        batches = list(BatchSampler(SequentialSampler(FakeSized(6)), 3))
        assert len(batches) == 2

    def test_invalid_batch_size(self):
        with pytest.raises(DataLoaderError):
            BatchSampler(SequentialSampler(FakeSized(5)), 0)
