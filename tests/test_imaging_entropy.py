import numpy as np
import pytest

from repro.errors import CodecError
from repro.imaging.jpeg.entropy import (
    decode_mcu,
    encode_mcu_huff,
    encoded_length,
)
from repro.imaging.jpeg.tables import BLOCK


def random_quant_blocks(n, density=0.2, seed=0):
    rng = np.random.default_rng(seed)
    blocks = np.zeros((n, BLOCK, BLOCK), dtype=np.int16)
    mask = rng.random(size=blocks.shape) < density
    blocks[mask] = rng.integers(-500, 500, size=int(mask.sum()), dtype=np.int16)
    return blocks


class TestEntropyRoundtrip:
    def test_roundtrip_random_blocks(self):
        blocks = random_quant_blocks(20)
        payload = encode_mcu_huff(blocks)
        decoded = decode_mcu(payload, 20)
        assert np.array_equal(decoded, blocks)

    def test_roundtrip_all_zero(self):
        blocks = np.zeros((5, 8, 8), dtype=np.int16)
        assert np.array_equal(decode_mcu(encode_mcu_huff(blocks), 5), blocks)

    def test_roundtrip_dense_blocks(self):
        blocks = random_quant_blocks(3, density=1.0, seed=1)
        assert np.array_equal(decode_mcu(encode_mcu_huff(blocks), 3), blocks)

    def test_roundtrip_many_blocks_crosses_refills(self):
        # More than one refill period (16 MCUs) to exercise
        # jpeg_fill_bit_buffer windowing.
        blocks = random_quant_blocks(100, seed=2)
        assert np.array_equal(decode_mcu(encode_mcu_huff(blocks), 100), blocks)

    def test_dc_delta_coding(self):
        blocks = np.zeros((3, 8, 8), dtype=np.int16)
        blocks[:, 0, 0] = [100, 110, 90]
        payload = encode_mcu_huff(blocks)
        assert np.array_equal(decode_mcu(payload, 3)[:, 0, 0], [100, 110, 90])

    def test_sparser_blocks_encode_smaller(self):
        sparse = encode_mcu_huff(random_quant_blocks(10, density=0.05))
        dense = encode_mcu_huff(random_quant_blocks(10, density=0.8))
        assert len(sparse) < len(dense)

    def test_encoded_length_matches(self):
        blocks = random_quant_blocks(15, seed=3)
        assert encoded_length(blocks) == len(encode_mcu_huff(blocks))


class TestEntropyErrors:
    def test_truncated_header_raises(self):
        blocks = random_quant_blocks(4)
        payload = encode_mcu_huff(blocks)
        with pytest.raises(CodecError):
            decode_mcu(payload[:2], 4)

    def test_truncated_records_raises(self):
        blocks = random_quant_blocks(4, density=0.5)
        payload = encode_mcu_huff(blocks)
        with pytest.raises(CodecError):
            decode_mcu(payload[:-4], 4)

    def test_bad_block_shape_raises(self):
        with pytest.raises(CodecError):
            encode_mcu_huff(np.zeros((2, 4, 4), dtype=np.int16))

    def test_decode_zero_blocks(self):
        out = decode_mcu(b"", 0)
        assert out.shape == (0, 8, 8)
