import numpy as np
import pytest

from repro.errors import ReproError
from repro.imaging.image import Image
from repro.tensor import Tensor
from repro.transforms import (
    CenterCrop,
    Grayscale,
    Lambda,
    Normalize,
    Pad,
    RandomHorizontalFlip,
    RandomResizedCrop,
    Resize,
    ToTensor,
)
from tests.conftest import make_test_image


class TestRandomResizedCrop:
    def test_output_size(self):
        image = Image(make_test_image(100, 140))
        out = RandomResizedCrop(64, seed=0)(image)
        assert out.size == (64, 64)

    def test_rect_size(self):
        out = RandomResizedCrop((48, 32), seed=0)(Image(make_test_image(100, 100)))
        assert out.size == (48, 32)

    def test_seeded_determinism(self):
        image = Image(make_test_image(128, 128))
        a = RandomResizedCrop(32, seed=5)(image).to_array()
        b = RandomResizedCrop(32, seed=5)(image).to_array()
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        image = Image(make_test_image(128, 128, seed=3))
        a = RandomResizedCrop(32, seed=1)(image).to_array()
        b = RandomResizedCrop(32, seed=2)(image).to_array()
        assert not np.array_equal(a, b)

    def test_extreme_aspect_fallback(self):
        # Very wide image: sampling often fails, falls back to center crop.
        image = Image(make_test_image(16, 400))
        out = RandomResizedCrop(24, seed=0, scale=(0.9, 1.0))(image)
        assert out.size == (24, 24)

    def test_invalid_scale(self):
        with pytest.raises(ReproError):
            RandomResizedCrop(32, scale=(0.0, 1.0))

    def test_invalid_ratio(self):
        with pytest.raises(ReproError):
            RandomResizedCrop(32, ratio=(2.0, 1.0))


class TestRandomHorizontalFlip:
    def test_always_flips_at_p1(self):
        array = make_test_image(20, 20)
        out = RandomHorizontalFlip(p=1.0, seed=0)(Image(array))
        assert np.array_equal(out.to_array(), array[:, ::-1])

    def test_never_flips_at_p0(self):
        array = make_test_image(20, 20)
        out = RandomHorizontalFlip(p=0.0, seed=0)(Image(array))
        assert np.array_equal(out.to_array(), array)

    def test_flip_rate_near_half(self):
        flipper = RandomHorizontalFlip(p=0.5, seed=9)
        array = make_test_image(12, 12, seed=4)
        image = Image(array)
        flips = sum(
            not np.array_equal(flipper(image).to_array(), array) for _ in range(200)
        )
        assert 60 < flips < 140

    def test_invalid_p(self):
        with pytest.raises(ReproError):
            RandomHorizontalFlip(p=1.5)


class TestResize:
    def test_deterministic(self):
        image = Image(make_test_image(64, 48))
        a = Resize((32, 32))(image).to_array()
        b = Resize((32, 32))(image).to_array()
        assert np.array_equal(a, b)

    def test_size(self):
        assert Resize(40)(Image(make_test_image(64, 48))).size == (40, 40)


class TestToTensor:
    def test_chw_float_unit_range(self):
        image = Image(make_test_image(10, 12))
        tensor = ToTensor()(image)
        assert isinstance(tensor, Tensor)
        assert tensor.shape == (3, 10, 12)
        assert tensor.dtype == np.float32
        assert tensor.numpy().min() >= 0.0
        assert tensor.numpy().max() <= 1.0

    def test_value_mapping(self):
        array = np.zeros((2, 2, 3), dtype=np.uint8)
        array[0, 0] = (255, 0, 127)
        tensor = ToTensor()(Image(array))
        assert tensor.numpy()[0, 0, 0] == pytest.approx(1.0)
        assert tensor.numpy()[2, 0, 0] == pytest.approx(127 / 255)

    def test_grayscale(self):
        image = Image(make_test_image(8, 8)).convert("L")
        tensor = ToTensor()(image)
        assert tensor.shape == (1, 8, 8)


class TestNormalize:
    def test_standardizes(self):
        data = np.ones((3, 4, 4), dtype=np.float32) * 0.5
        out = Normalize([0.5, 0.5, 0.5], [0.25, 0.25, 0.25])(Tensor(data))
        assert np.allclose(out.numpy(), 0.0)

    def test_per_channel(self):
        data = np.stack([np.full((2, 2), 1.0), np.full((2, 2), 2.0)]).astype(np.float32)
        out = Normalize([1.0, 1.0], [1.0, 2.0])(Tensor(data))
        assert np.allclose(out.numpy()[0], 0.0)
        assert np.allclose(out.numpy()[1], 0.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ReproError):
            Normalize([0.5], [0.1, 0.2])

    def test_zero_std(self):
        with pytest.raises(ReproError):
            Normalize([0.5], [0.0])

    def test_channel_mismatch_at_call(self):
        norm = Normalize([0.5] * 3, [0.2] * 3)
        with pytest.raises(ReproError):
            norm(Tensor(np.zeros((1, 4, 4), dtype=np.float32)))


class TestCenterCrop:
    def test_central_region(self):
        array = make_test_image(60, 80)
        out = CenterCrop((40, 20))(Image(array))
        assert out.size == (40, 20)
        assert np.array_equal(out.to_array(), array[20:40, 20:60])

    def test_deterministic(self):
        image = Image(make_test_image(50, 50))
        a = CenterCrop(32)(image).to_array()
        b = CenterCrop(32)(image).to_array()
        assert np.array_equal(a, b)

    def test_pads_small_images(self):
        out = CenterCrop(64)(Image(make_test_image(20, 20)))
        assert out.size == (64, 64)


class TestPad:
    def test_symmetric_padding(self):
        out = Pad((3, 5), fill=7)(Image(make_test_image(10, 10)))
        assert out.size == (16, 20)
        array = out.to_array()
        assert (array[0] == 7).all()
        assert (array[:, 0] == 7).all()

    def test_int_padding(self):
        assert Pad(2)(Image(make_test_image(8, 8))).size == (12, 12)

    def test_zero_padding_identity(self):
        image = Image(make_test_image(8, 8))
        assert Pad(0)(image) is image

    def test_grayscale_padding(self):
        gray = Image(make_test_image(8, 8)).convert("L")
        out = Pad(1)(gray)
        assert out.mode == "L"
        assert out.size == (10, 10)

    def test_negative_padding_raises(self):
        with pytest.raises(ReproError):
            Pad((-1, 2))


class TestGrayscale:
    def test_single_channel(self):
        out = Grayscale(1)(Image(make_test_image(12, 12)))
        assert out.mode == "L"
        assert out.to_array().ndim == 2

    def test_three_channel_replication(self):
        out = Grayscale(3)(Image(make_test_image(12, 12)))
        assert out.mode == "RGB"
        array = out.to_array()
        assert np.array_equal(array[..., 0], array[..., 1])
        assert np.array_equal(array[..., 1], array[..., 2])

    def test_invalid_channels(self):
        with pytest.raises(ReproError):
            Grayscale(2)


class TestLambda:
    def test_applies_function(self):
        double = Lambda(lambda x: x * 2, name="Double")
        assert double(3) == 6

    def test_trace_label(self):
        from repro.core.lotustrace import InMemoryTraceLog
        from repro.transforms import Compose

        log = InMemoryTraceLog()
        Compose([Lambda(lambda x: x, name="MyStep")],
                log_transform_elapsed_time=log)(1)
        assert log.records()[0].name == "MyStep"

    def test_non_callable_raises(self):
        with pytest.raises(ReproError):
            Lambda("nope")
