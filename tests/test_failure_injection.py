"""Failure injection across module boundaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clib.events import CallEvent
from repro.data.dataloader import DataLoader
from repro.data.dataset import BlobImageDataset, Dataset
from repro.errors import CodecError, TraceError, WorkerCrashError
from repro.hwprof.sampling import build_leaf_segments
from repro.imaging.jpeg.codec import encode_sjpg
from tests.conftest import make_test_image


class TestCorruptBlobsThroughPipeline:
    def test_truncated_blob_surfaces_as_worker_crash(self, small_blobs):
        blobs = list(small_blobs)
        blobs[3] = blobs[3][: len(blobs[3]) // 3]  # truncated mid-payload
        loader = DataLoader(
            BlobImageDataset(blobs, transform=lambda im: im.to_array().sum()),
            batch_size=4,
            num_workers=2,
            worker_timeout_s=10,
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            list(loader)
        assert "CodecError" in str(excinfo.value) or "truncated" in str(excinfo.value)

    def test_garbage_blob_single_process(self):
        dataset = BlobImageDataset([b"not an image at all"])
        with pytest.raises(CodecError):
            dataset[0]

    @given(cut=st.integers(min_value=1, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_random_truncation_never_crashes_uncontrolled(self, cut):
        """Any truncation raises CodecError — never IndexError/ValueError
        from deep inside numpy."""
        from repro.imaging.jpeg.codec import decode_sjpg

        blob = encode_sjpg(make_test_image(48, 48, seed=1), quality=70)
        truncated = blob[: max(0, len(blob) - cut)]
        with pytest.raises(CodecError):
            decode_sjpg(truncated)

    @given(
        position=st.integers(min_value=16, max_value=400),
        value=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=20, deadline=None)
    def test_byte_flips_decode_or_raise_codec_error(self, position, value):
        """Flipping payload bytes either still decodes (wrong pixels are
        fine — it is lossy data) or raises the codec's own error type."""
        from repro.imaging.jpeg.codec import decode_sjpg

        blob = bytearray(encode_sjpg(make_test_image(48, 48, seed=2), quality=70))
        if position >= len(blob):
            position = len(blob) - 1
        blob[position] = value
        try:
            decoded = decode_sjpg(bytes(blob))
            assert decoded.shape[2] == 3
        except CodecError:
            pass


class TestSamplerRobustness:
    def test_orphan_depth_event_treated_as_root(self):
        """Recording can start mid-call: a depth-1 event with no parent
        must not crash segment building."""
        orphan = CallEvent(
            thread_id=1, function="inner", library="lib",
            start_ns=0, duration_ns=100, depth=1, active_threads=1,
        )
        segments = build_leaf_segments([orphan])[1]
        assert [s.function for s in segments] == ["inner"]
        assert segments[0].stack == (("inner", "lib"),)

    def test_zero_duration_event(self):
        instant = CallEvent(
            thread_id=1, function="f", library="lib",
            start_ns=10, duration_ns=0, depth=0, active_threads=1,
        )
        segments = build_leaf_segments([instant])[1]
        # Zero-width span yields no leaf segment (nothing to sample).
        assert all(s.duration_ns >= 0 for s in segments)


class TestTraceRobustness:
    def test_interleaved_multi_run_log(self, tmp_path):
        """Appending a second run to the same log keeps both analyzable
        (batch ids collide across runs — analysis merges flows, which is
        the documented append semantics)."""
        from repro.core.lotustrace import analyze_trace, parse_trace_file
        from repro.workloads import SMOKE, build_ic_pipeline

        path = tmp_path / "two_runs.log"
        for seed in (0, 1):
            bundle = build_ic_pipeline(
                profile=SMOKE, num_workers=1, log_file=str(path), seed=seed
            )
            bundle.run_epoch()
        analysis = analyze_trace(parse_trace_file(path))
        assert analysis.batches
        assert analysis.op_durations["Loader"]

    def test_partial_line_at_tail_raises_cleanly(self, tmp_path):
        from repro.core.lotustrace import parse_trace_file

        path = tmp_path / "torn.log"
        path.write_text("op,Loader,-1,0,1,100,50,0\nop,Random")
        with pytest.raises(TraceError):
            parse_trace_file(path)


class TestPinMemoryStructures:
    def test_non_tensor_payload_passthrough(self):
        class StringDataset(Dataset):
            def __getitem__(self, index):
                return {"name": f"item{index}", "value": np.array([float(index)])}

            def __len__(self):
                return 4

        loader = DataLoader(
            StringDataset(), batch_size=2, num_workers=1, pin_memory=True
        )
        batch = next(iter(loader))
        assert batch["value"].pinned
        # Non-tensor leaves survive the pin walk untouched.
        assert batch["name"] == ["item0", "item1"]
