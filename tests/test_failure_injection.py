"""Failure injection across module boundaries."""

import pickle
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clib.events import CallEvent
from repro.data import (
    FailurePolicy,
    FaultInjectingDataset,
    FaultPlan,
    FaultSite,
    TensorDataset,
)
from repro.data.backends import ThreadWorkerBackend
from repro.data.dataloader import DataLoader
from repro.data.dataset import BlobImageDataset, Dataset
from repro.data.worker import SHUTDOWN_SENTINEL
from repro.errors import (
    CodecError,
    RetryExhaustedError,
    TraceError,
    WorkerCrashError,
)
from repro.hwprof.sampling import build_leaf_segments
from repro.imaging.jpeg.codec import encode_sjpg
from tests.conftest import make_test_image


class TestCorruptBlobsThroughPipeline:
    def test_truncated_blob_surfaces_as_worker_crash(self, small_blobs):
        blobs = list(small_blobs)
        blobs[3] = blobs[3][: len(blobs[3]) // 3]  # truncated mid-payload
        loader = DataLoader(
            BlobImageDataset(blobs, transform=lambda im: im.to_array().sum()),
            batch_size=4,
            num_workers=2,
            worker_timeout_s=10,
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            list(loader)
        assert "CodecError" in str(excinfo.value) or "truncated" in str(excinfo.value)

    def test_garbage_blob_single_process(self):
        dataset = BlobImageDataset([b"not an image at all"])
        with pytest.raises(CodecError):
            dataset[0]

    @given(cut=st.integers(min_value=1, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_random_truncation_never_crashes_uncontrolled(self, cut):
        """Any truncation raises CodecError — never IndexError/ValueError
        from deep inside numpy."""
        from repro.imaging.jpeg.codec import decode_sjpg

        blob = encode_sjpg(make_test_image(48, 48, seed=1), quality=70)
        truncated = blob[: max(0, len(blob) - cut)]
        with pytest.raises(CodecError):
            decode_sjpg(truncated)

    @given(
        position=st.integers(min_value=16, max_value=400),
        value=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=20, deadline=None)
    def test_byte_flips_decode_or_raise_codec_error(self, position, value):
        """Flipping payload bytes either still decodes (wrong pixels are
        fine — it is lossy data) or raises the codec's own error type."""
        from repro.imaging.jpeg.codec import decode_sjpg

        blob = bytearray(encode_sjpg(make_test_image(48, 48, seed=2), quality=70))
        if position >= len(blob):
            position = len(blob) - 1
        blob[position] = value
        try:
            decoded = decode_sjpg(bytes(blob))
            assert decoded.shape[2] == 3
        except CodecError:
            pass


class TestSamplerRobustness:
    def test_orphan_depth_event_treated_as_root(self):
        """Recording can start mid-call: a depth-1 event with no parent
        must not crash segment building."""
        orphan = CallEvent(
            thread_id=1, function="inner", library="lib",
            start_ns=0, duration_ns=100, depth=1, active_threads=1,
        )
        segments = build_leaf_segments([orphan])[1]
        assert [s.function for s in segments] == ["inner"]
        assert segments[0].stack == (("inner", "lib"),)

    def test_zero_duration_event(self):
        instant = CallEvent(
            thread_id=1, function="f", library="lib",
            start_ns=10, duration_ns=0, depth=0, active_threads=1,
        )
        segments = build_leaf_segments([instant])[1]
        # Zero-width span yields no leaf segment (nothing to sample).
        assert all(s.duration_ns >= 0 for s in segments)


class TestTraceRobustness:
    def test_interleaved_multi_run_log(self, tmp_path):
        """Appending a second run to the same log keeps both analyzable
        (batch ids collide across runs — analysis merges flows, which is
        the documented append semantics)."""
        from repro.core.lotustrace import analyze_trace, parse_trace_file
        from repro.workloads import SMOKE, build_ic_pipeline

        path = tmp_path / "two_runs.log"
        for seed in (0, 1):
            bundle = build_ic_pipeline(
                profile=SMOKE, num_workers=1, log_file=str(path), seed=seed
            )
            bundle.run_epoch()
        analysis = analyze_trace(parse_trace_file(path))
        assert analysis.batches
        assert analysis.op_durations["Loader"]

    def test_partial_line_at_tail_raises_cleanly(self, tmp_path):
        from repro.core.lotustrace import parse_trace_file

        path = tmp_path / "torn.log"
        path.write_text("op,Loader,-1,0,1,100,50,0\nop,Random")
        with pytest.raises(TraceError):
            parse_trace_file(path)


class TestPinMemoryStructures:
    def test_non_tensor_payload_passthrough(self):
        class StringDataset(Dataset):
            def __getitem__(self, index):
                return {"name": f"item{index}", "value": np.array([float(index)])}

            def __len__(self):
                return 4

        loader = DataLoader(
            StringDataset(), batch_size=2, num_workers=1, pin_memory=True
        )
        batch = next(iter(loader))
        assert batch["value"].pinned
        # Non-tensor leaves survive the pin walk untouched.
        assert batch["name"] == ["item0", "item1"]


# --------------------------------------------------------------------------
# Fault-tolerance chaos tests (DESIGN.md §8): deterministic FaultPlans
# driven through failure policies and the worker supervisor on both
# backends, with exact per-sample accounting and trace verification.
# --------------------------------------------------------------------------

N_SAMPLES = 32
BATCH = 4


def counting_dataset(plan=None, n=N_SAMPLES):
    ds = TensorDataset(np.arange(n, dtype=np.float32).reshape(n, 1))
    return ds if plan is None else FaultInjectingDataset(ds, plan)


def batch_array(batch):
    value = batch[0]
    return value.numpy() if hasattr(value, "numpy") else np.asarray(value)


def epoch(loader):
    return [batch_array(b).copy() for b in loader]


def clean_epoch():
    return epoch(DataLoader(counting_dataset(), batch_size=BATCH))


def assert_non_faulted_batches_identical(got, skipped_indices):
    """Delivered samples must be the non-skipped values, in dataset
    order, bitwise equal to a fault-free run's values."""
    delivered = np.concatenate([g.ravel() for g in got]) if got else np.array([])
    expected = np.array(
        sorted(set(range(N_SAMPLES)) - set(skipped_indices)), dtype=np.float32
    )
    np.testing.assert_array_equal(np.sort(delivered), expected)


class TestFaultPlanDeterminism:
    def test_rate_draws_are_seed_stable(self):
        a = FaultPlan(seed=11, transient_rate=0.1)
        b = FaultPlan(seed=11, transient_rate=0.1)
        c = FaultPlan(seed=12, transient_rate=0.1)
        assert a.transient_indices(256) == b.transient_indices(256)
        assert a.transient_indices(256) != c.transient_indices(256)

    def test_rate_hits_are_backend_and_schedule_independent(self):
        # The hit set is pure integer math on (seed, index) — recomputing
        # it never consults workers, threads, or prior draws.
        plan = FaultPlan(seed=3, transient_rate=0.2, corrupt_rate=0.1)
        first = (plan.transient_indices(64), plan.corrupt_indices(64))
        second = (plan.transient_indices(64), plan.corrupt_indices(64))
        assert first == second

    def test_simulated_remote_store_consumes_plan(self):
        from repro.datasets.filestore import SimulatedRemoteStore

        blobs = [bytes(range(64)) for _ in range(8)]
        plan = FaultPlan(
            seed=0,
            sites=(
                FaultSite(kind="transient", sample_index=2),
                FaultSite(kind="corrupt", sample_index=5),
            ),
        )
        store = SimulatedRemoteStore(
            blobs, base_latency_s=0.0, bandwidth_mb_s=0.0, fault_plan=plan
        )
        with pytest.raises(IOError):
            store[2]
        assert store[2] == blobs[2]  # transient: second read succeeds
        assert store[5] != blobs[5] and len(store[5]) < len(blobs[5])
        assert store[0] == blobs[0]


class TestFailurePolicies:
    def test_skip_sample_single_process_exact_accounting(self):
        plan = FaultPlan(seed=3, transient_rate=0.2)
        expected_bad = set(plan.transient_indices(N_SAMPLES))
        assert expected_bad, "seed must inject at least one fault"
        loader = DataLoader(
            counting_dataset(plan), batch_size=BATCH, failure_policy="skip_sample"
        )
        got = epoch(loader)
        stats = loader.fault_stats
        assert set(stats.skipped_indices) == expected_bad
        assert stats.delivered_samples + stats.skipped_samples == N_SAMPLES
        assert_non_faulted_batches_identical(got, stats.skipped_indices)

    def test_retry_recovers_transients_bit_identical(self):
        plan = FaultPlan(seed=5, transient_rate=0.15, transient_attempts=1)
        loader = DataLoader(
            counting_dataset(plan),
            batch_size=BATCH,
            failure_policy=FailurePolicy(
                mode="retry", max_retries=2, backoff_base_s=0.001
            ),
        )
        got = epoch(loader)
        stats = loader.fault_stats
        assert stats.skipped_samples == 0
        assert stats.delivered_samples == N_SAMPLES
        assert stats.retried_samples >= len(plan.transient_indices(N_SAMPLES)) > 0
        for a, b in zip(got, clean_epoch()):
            np.testing.assert_array_equal(a, b)

    def test_retry_exhaustion_raises_typed_error(self):
        plan = FaultPlan(
            seed=0, sites=(FaultSite(kind="transient", sample_index=3, attempts=99),)
        )
        loader = DataLoader(
            counting_dataset(plan),
            batch_size=BATCH,
            failure_policy=FailurePolicy(
                mode="retry", max_retries=1, backoff_base_s=0.0
            ),
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            epoch(loader)
        assert excinfo.value.index == 3
        assert excinfo.value.attempts == 2

    def test_default_policy_still_raises(self):
        plan = FaultPlan(
            seed=0, sites=(FaultSite(kind="transient", sample_index=3),)
        )
        with pytest.raises(IOError):
            epoch(DataLoader(counting_dataset(plan), batch_size=BATCH))

    def test_policy_raise_in_worker_surfaces_as_crash(self):
        plan = FaultPlan(
            seed=0,
            sites=(FaultSite(kind="transient", sample_index=3, attempts=99),),
        )
        loader = DataLoader(
            counting_dataset(plan),
            batch_size=BATCH,
            num_workers=2,
            worker_timeout_s=10,
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            epoch(loader)
        assert "OSError" in str(excinfo.value) or "IOError" in str(excinfo.value)

    def test_corrupt_faults_surface_as_codec_error_and_skip(self):
        plan = FaultPlan(
            seed=0, sites=(FaultSite(kind="corrupt", sample_index=7),)
        )
        loader = DataLoader(
            counting_dataset(plan), batch_size=BATCH, failure_policy="skip_sample"
        )
        epoch(loader)
        assert loader.fault_stats.skipped_indices == [7]
        # Corruption is persistent: a raise-policy loader sees CodecError.
        plan2 = FaultPlan(
            seed=0, sites=(FaultSite(kind="corrupt", sample_index=7),)
        )
        with pytest.raises(CodecError):
            epoch(DataLoader(counting_dataset(plan2), batch_size=BATCH))


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestChaosEpochs:
    """The acceptance scenario: transient faults at a 5% rate, retry
    escalating to skip, 2 workers, exact accounting, fault records in
    the trace, and bitwise-identical non-faulted samples."""

    def test_transient_chaos_exact_accounting(self, backend, tmp_path):
        from repro.core.lotustrace import analyze_trace, parse_trace_file_columns

        log = str(tmp_path / "chaos.log")
        plan = FaultPlan(
            seed=29,
            transient_rate=0.05,
            transient_attempts=1,
            sites=(
                # One unrecoverable sample: retries exhaust, skip kicks in.
                FaultSite(kind="transient", sample_index=13, attempts=99),
            ),
        )
        recoverable = set(plan.transient_indices(N_SAMPLES)) - {13}
        assert recoverable, "rate must inject at least one recoverable fault"
        loader = DataLoader(
            counting_dataset(plan),
            batch_size=BATCH,
            num_workers=2,
            worker_backend=backend,
            log_file=log,
            failure_policy=FailurePolicy(
                mode="retry",
                max_retries=2,
                backoff_base_s=0.001,
                on_exhausted="skip_sample",
            ),
            worker_timeout_s=30,
        )
        got = epoch(loader)
        stats = loader.fault_stats
        assert stats.delivered_samples + stats.skipped_samples == N_SAMPLES
        assert stats.skipped_indices == [13]
        assert stats.retried_samples >= len(recoverable) + 2
        assert_non_faulted_batches_identical(got, stats.skipped_indices)
        analysis = analyze_trace(parse_trace_file_columns(log))
        counts = analysis.fault_counts()
        assert counts.get("sample_retried", 0) == stats.retried_samples
        assert counts.get("sample_skipped", 0) == 1
        assert analysis.skipped_sample_indices() == [13]

    def test_crash_recovery_bit_identical(self, backend, tmp_path):
        from repro.core.lotustrace import analyze_trace, parse_trace_file_columns

        log = str(tmp_path / "crash.log")
        plan = FaultPlan(
            seed=0, sites=(FaultSite(kind="crash", sample_index=10),)
        )
        loader = DataLoader(
            counting_dataset(plan),
            batch_size=BATCH,
            num_workers=2,
            worker_backend=backend,
            log_file=log,
            max_worker_restarts=2,
            hang_timeout_s=10.0,
            worker_timeout_s=30,
        )
        got = epoch(loader)
        stats = loader.fault_stats
        assert stats.worker_restarts == 1
        for a, b in zip(got, clean_epoch()):
            np.testing.assert_array_equal(a, b)
        analysis = analyze_trace(parse_trace_file_columns(log))
        assert analysis.fault_counts().get("worker_restart", 0) == 1
        restart = [
            r for r in analysis.fault_records if r.kind == "worker_restart"
        ]
        assert restart and restart[0].name == "crash"


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestReorderBufferSkipSample:
    """OOO reorder buffer under ``skip_sample`` (ISSUE 10 satellite):
    a stalled head batch parks every later arrival in the out-of-order
    buffer, a corrupt sample inside one of those parked batches is
    skipped — delivery order, partial-batch accounting, and the 1 µs
    OOO wait markers must all survive the combination, on both
    backends."""

    class SlowHeadDataset(Dataset):
        def __len__(self):
            return N_SAMPLES

        def __getitem__(self, index):
            if index == 0:
                time.sleep(0.3)
            return np.array([float(index)], dtype=np.float32)

    def test_skipped_sample_inside_reordered_batch(self, backend, tmp_path):
        from repro.core.lotustrace import (
            analyze_trace,
            out_of_order_events,
            parse_trace_file,
        )

        log = str(tmp_path / "ooo_skip.trace")
        plan = FaultPlan(
            seed=0, sites=(FaultSite(kind="corrupt", sample_index=13),)
        )
        loader = DataLoader(
            FaultInjectingDataset(self.SlowHeadDataset(), plan),
            batch_size=BATCH,
            num_workers=2,
            worker_backend=backend,
            failure_policy="skip_sample",
            log_file=log,
            seed=0,
            worker_timeout_s=30,
        )
        got = [batch.numpy().copy() for batch in loader]
        stats = loader.fault_stats
        assert stats.skipped_indices == [13]
        assert stats.delivered_samples + stats.skipped_samples == N_SAMPLES
        # The reorder buffer must preserve dataset order even though the
        # skipped sample's batch arrived (and was parked) out of order:
        # delivered values are the full sequence minus 13, *in order*.
        delivered = np.concatenate([g.ravel() for g in got])
        expected = np.array(
            [i for i in range(N_SAMPLES) if i != 13], dtype=np.float32
        )
        np.testing.assert_array_equal(delivered, expected)
        sizes = sorted(len(g) for g in got)
        assert sizes == [3] + [4] * (N_SAMPLES // BATCH - 1)
        analysis = analyze_trace(parse_trace_file(log))
        assert analysis.skipped_sample_indices() == [13]
        # Batches overtaking the stalled head must have left OOO markers.
        ooo = out_of_order_events(analysis)
        assert len(ooo) >= 1
        assert all(event.batch_id != 0 for event in ooo)


class TestHangRecovery:
    def test_hung_thread_worker_is_replaced(self):
        plan = FaultPlan(
            seed=0, sites=(FaultSite(kind="hang", sample_index=6, hang_s=3.0),)
        )
        loader = DataLoader(
            counting_dataset(plan),
            batch_size=BATCH,
            num_workers=2,
            max_worker_restarts=1,
            hang_timeout_s=0.5,
            worker_timeout_s=30,
        )
        got = epoch(loader)
        stats = loader.fault_stats
        assert stats.worker_restarts == 1
        assert stats.heartbeats > 0  # idle peer beaconed during the stall
        for a, b in zip(got, clean_epoch()):
            np.testing.assert_array_equal(a, b)

    def test_hang_without_restart_budget_raises_typed_error(self):
        from repro.errors import WorkerHungError

        plan = FaultPlan(
            seed=0, sites=(FaultSite(kind="hang", sample_index=2, hang_s=3.0),)
        )
        loader = DataLoader(
            counting_dataset(plan),
            batch_size=BATCH,
            num_workers=2,
            hang_timeout_s=0.4,
            worker_timeout_s=30,
        )
        with pytest.raises(WorkerHungError) as excinfo:
            epoch(loader)
        assert excinfo.value.worker_id in (0, 1)


class TestQueueProtocol:
    def test_shutdown_sentinel_survives_pickling_with_identity(self):
        # multiprocessing queues pickle payloads; the sentinel must still
        # compare by identity on the far side.
        clone = pickle.loads(pickle.dumps(SHUTDOWN_SENTINEL))
        assert clone is SHUTDOWN_SENTINEL
        assert SHUTDOWN_SENTINEL is not None

    def test_thread_backend_terminate_is_cooperative(self):
        backend = ThreadWorkerBackend()
        stopped = threading.Event()

        def target(cancel_flag=None):
            while not cancel_flag.is_set():
                cancel_flag.wait(0.01)
            stopped.set()

        handle = backend.start_worker(target, args=(), kwargs={}, name="t")
        assert backend.is_alive(handle)
        backend.terminate(handle)
        backend.join(handle, timeout=2.0)
        assert stopped.is_set()
        assert not backend.is_alive(handle)
