"""Trace comparison and per-library profile aggregation."""

import pytest

from repro.core.lotustrace import InMemoryTraceLog, compare_traces
from repro.core.lotustrace.records import (
    KIND_BATCH_CONSUMED,
    KIND_BATCH_PREPROCESSED,
    KIND_BATCH_WAIT,
    KIND_OP,
    MAIN_PROCESS_WORKER_ID,
    TraceRecord,
)
from repro.errors import TraceError
from repro.hwprof.counters import CounterSet
from repro.hwprof.profile import FunctionProfile, HardwareProfile
from repro.hwprof.report import aggregate_by_library, format_library_table

MS = 1_000_000


def rec(kind, batch_id, start_ms, dur_ms, worker=0, name="x"):
    return TraceRecord(
        kind=kind, name=name, batch_id=batch_id, worker_id=worker, pid=1,
        start_ns=start_ms * MS, duration_ns=dur_ms * MS,
    )


def trace(loader_ms, crop_ms, wait_ms):
    out = []
    for i in range(3):
        base = i * 100
        out.append(rec(KIND_OP, -1, base, loader_ms, name="Loader"))
        out.append(rec(KIND_OP, -1, base + loader_ms, crop_ms, name="Crop"))
        out.append(rec(KIND_BATCH_PREPROCESSED, i, base, loader_ms + crop_ms))
        out.append(
            rec(KIND_BATCH_WAIT, i, base, wait_ms, worker=MAIN_PROCESS_WORKER_ID)
        )
        out.append(
            rec(KIND_BATCH_CONSUMED, i, base + 90, 1, worker=MAIN_PROCESS_WORKER_ID)
        )
    return out


class TestCompareTraces:
    def test_op_deltas(self):
        comparison = compare_traces(trace(50, 10, 40), trace(5, 10, 2))
        loader = comparison.delta_for("Loader")
        assert loader.baseline_total_ns == 150 * MS
        assert loader.candidate_total_ns == 15 * MS
        assert loader.ratio == pytest.approx(0.1)
        crop = comparison.delta_for("Crop")
        assert crop.ratio == pytest.approx(1.0)

    def test_wait_shift(self):
        comparison = compare_traces(trace(50, 10, 40), trace(5, 10, 2))
        assert comparison.baseline_median_wait_ns == 40 * MS
        assert comparison.candidate_median_wait_ns == 2 * MS

    def test_biggest_improvement_and_regression(self):
        comparison = compare_traces(trace(50, 10, 40), trace(5, 30, 2))
        assert comparison.biggest_improvement().op == "Loader"
        assert comparison.biggest_regression().op == "Crop"

    def test_no_regressions_returns_none(self):
        comparison = compare_traces(trace(50, 10, 40), trace(5, 10, 2))
        assert comparison.biggest_regression() is None

    def test_new_op_infinite_ratio(self):
        candidate = trace(5, 10, 2) + [rec(KIND_OP, -1, 500, 3, name="Extra")]
        comparison = compare_traces(trace(50, 10, 40), candidate)
        assert comparison.delta_for("Extra").ratio == float("inf")

    def test_missing_delta_raises(self):
        comparison = compare_traces(trace(1, 1, 1), trace(1, 1, 1))
        with pytest.raises(TraceError):
            comparison.delta_for("Nope")

    def test_empty_traces_raise(self):
        with pytest.raises(TraceError):
            compare_traces([], [])

    def test_format(self):
        text = compare_traces(trace(50, 10, 40), trace(5, 10, 2)).format()
        assert "Loader" in text and "median wait" in text

    def test_on_real_cache_experiment(self, small_blobs):
        """Before/after the decode cache: Loader collapses, the rest holds."""
        from repro.data.cache import CachingLoader
        from repro.data.dataloader import DataLoader
        from repro.data.dataset import BlobImageDataset
        from repro.transforms import Compose, RandomResizedCrop, ToTensor

        def run(loader_fn):
            log = InMemoryTraceLog()
            dataset = BlobImageDataset(
                small_blobs,
                transform=Compose(
                    [RandomResizedCrop(32, seed=0), ToTensor()],
                    log_transform_elapsed_time=log,
                ),
                loader=loader_fn,
                log_file=log,
            )
            for _ in DataLoader(dataset, batch_size=4, num_workers=1, log_file=log):
                pass
            return log.records()

        from repro.data.dataset import pil_loader

        baseline = run(pil_loader)
        cache = CachingLoader()
        run(cache)  # warm
        candidate = run(cache)
        comparison = compare_traces(baseline, candidate)
        assert comparison.delta_for("Loader").ratio < 0.2
        assert comparison.delta_for("RandomResizedCrop").ratio < 3.0


class TestLibraryAggregation:
    def make_profile(self):
        profile = HardwareProfile("intel", 1000)
        for function, library, cpu in [
            ("decode_mcu", "libjpeg.so.9", 500.0),
            ("jpeg_idct_islow", "libjpeg.so.9", 300.0),
            ("memcpy", "libc.so.6", 100.0),
        ]:
            row = FunctionProfile(function=function, library=library, samples=1)
            row.counters.add({"cpu_time_ns": cpu, "clockticks": cpu * 3.2,
                              "instructions_retired": cpu * 4.0})
            profile._rows[(function, library)] = row
        return profile

    def test_aggregation_sums_per_library(self):
        totals = aggregate_by_library(self.make_profile())
        assert totals["libjpeg.so.9"].cpu_time_ns == 800.0
        assert totals["libc.so.6"].cpu_time_ns == 100.0

    def test_ordering_by_cpu_time(self):
        libraries = list(aggregate_by_library(self.make_profile()))
        assert libraries == ["libjpeg.so.9", "libc.so.6"]

    def test_format(self):
        text = format_library_table(self.make_profile())
        assert "libjpeg.so.9" in text
        assert "88.9%" in text  # 800/900
