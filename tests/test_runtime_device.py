import time

import pytest

from repro.errors import ReproError
from repro.runtime.device import VirtualGPU, make_gpus


class TestVirtualGPU:
    def test_submit_returns_job(self):
        gpu = VirtualGPU(0)
        job = gpu.submit(0.01)
        assert job.device_id == 0
        assert job.duration_s == 0.01

    def test_submit_is_async(self):
        gpu = VirtualGPU(0)
        start = time.monotonic()
        gpu.submit(0.05)
        assert time.monotonic() - start < 0.02

    def test_synchronize_waits(self):
        gpu = VirtualGPU(0)
        gpu.submit(0.03)
        start = time.monotonic()
        gpu.synchronize()
        assert time.monotonic() - start >= 0.02

    def test_kernels_serialize(self):
        gpu = VirtualGPU(0)
        first = gpu.submit(0.02)
        second = gpu.submit(0.02)
        assert second.ready_at >= first.ready_at + 0.015

    def test_job_wait_and_done(self):
        gpu = VirtualGPU(0)
        job = gpu.submit(0.01)
        assert not job.done
        job.wait()
        assert job.done

    def test_busy_flag(self):
        gpu = VirtualGPU(0)
        assert not gpu.busy
        gpu.submit(0.05)
        assert gpu.busy
        gpu.synchronize()
        assert not gpu.busy

    def test_utilization_bounds(self):
        gpu = VirtualGPU(0)
        gpu.submit(0.01)
        gpu.synchronize()
        assert 0.0 < gpu.utilization() <= 1.0

    def test_stats(self):
        gpu = VirtualGPU(2)
        gpu.submit(0.001)
        stats = gpu.stats()
        assert stats["device"] == "gpu:2"
        assert stats["jobs_submitted"] == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            VirtualGPU(-1)
        with pytest.raises(ReproError):
            VirtualGPU(0).submit(-0.1)


class TestMakeGpus:
    def test_count(self):
        gpus = make_gpus(3)
        assert [gpu.device_id for gpu in gpus] == [0, 1, 2]

    def test_invalid(self):
        with pytest.raises(ReproError):
            make_gpus(0)
