"""Compare LotusTrace with the sampling/trace profiler baselines.

Reproduces the paper's § VI comparison on a scaled IC epoch: wall-time
and log-storage overhead per profiler (Table III) and the functionality
matrix (Table IV), including the trace-buffering profiler's OOM on the
larger dataset.

Run:  python examples/compare_profilers.py
"""

import tempfile

from repro.experiments.table3_overhead import format_table3, run_table3
from repro.experiments.table4_functionality import format_table4, run_table4
from repro.workloads import SMOKE


def main() -> None:
    profile = SMOKE.scaled(ic_images=48)
    with tempfile.TemporaryDirectory(prefix="lotus-compare-") as log_dir:
        print("measuring profiler overheads (one epoch per profiler) ...\n")
        print(format_table3(run_table3(profile=profile, log_dir=log_dir)))
        print()
        print("deriving functionality from each profiler's own output ...\n")
        print(format_table4(run_table4(profile=profile, log_dir=log_dir)))
        print(
            "\nLotus is the only profiler whose output yields per-batch times,"
            "\nthe async main<->worker flow, waits, and delays (Table IV)."
        )


if __name__ == "__main__":
    main()
