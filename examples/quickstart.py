"""Quickstart: instrument an image pipeline with LotusTrace.

Mirrors the paper's Listing 1: declare a preprocessing pipeline with
``Compose``, point the ``log_file`` hooks at one trace file, run an epoch,
then analyze per-operation / per-batch timing and export a Chrome trace.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import (
    Compose,
    DataLoader,
    ImageFolder,
    Normalize,
    RandomHorizontalFlip,
    RandomResizedCrop,
    ToTensor,
    analyze_trace,
    parse_trace_file,
    write_chrome_trace,
)
from repro.datasets import SyntheticImageNet
from repro.utils.timeunits import format_ns


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="lotus-quickstart-")
    train_dir = os.path.join(workdir, "train")
    custom_log_file = os.path.join(workdir, "lotustrace.log")

    # A tiny synthetic stand-in for ImageNet, laid out as an ImageFolder.
    print("generating synthetic dataset ...")
    SyntheticImageNet(48, n_classes=4, seed=0).write_image_folder(train_dir)

    # Listing 1, almost verbatim: the pipeline and loader take the same
    # log_file used by the paper's instrumented torchvision build.
    train_dataset = ImageFolder(
        train_dir,
        Compose(
            [
                RandomResizedCrop(64),
                RandomHorizontalFlip(),
                ToTensor(),
                Normalize(mean=[0.485, 0.456, 0.406], std=[0.229, 0.224, 0.225]),
            ],
            log_transform_elapsed_time=custom_log_file,
        ),
        log_file=custom_log_file,
    )
    train_loader = DataLoader(
        train_dataset,
        batch_size=8,
        shuffle=True,
        num_workers=2,
        pin_memory=True,
        log_file=custom_log_file,
    )

    print("running one epoch ...")
    for batch, labels in train_loader:
        pass  # a real job would train a model here

    analysis = analyze_trace(parse_trace_file(custom_log_file))
    print(f"\nPer-operation elapsed time over {len(analysis.batches)} batches:")
    for op in analysis.op_names():
        summary = analysis.op_summary(op)
        print(
            f"  {op:<22} avg={format_ns(summary.mean):>10} "
            f"p90={format_ns(summary.p90):>10} n={summary.count}"
        )

    waits = analysis.wait_times_ns()
    delays = analysis.delay_times_ns()
    print(f"\nmain-process wait  (median): {format_ns(sorted(waits)[len(waits) // 2])}")
    print(f"batch delay        (median): {format_ns(sorted(delays)[len(delays) // 2])}")

    viz = os.path.join(workdir, "viz_file.lotustrace")
    write_chrome_trace(parse_trace_file(custom_log_file), viz, coarse=True)
    print(f"\nChrome trace written to {viz}")
    print("open chrome://tracing and load it to see the data flow")


if __name__ == "__main__":
    main()
