"""Quickstart: instrument an image pipeline with LotusTrace.

Mirrors the paper's Listing 1: declare a preprocessing pipeline with
``Compose``, point the ``log_file`` hooks at one trace file, run an epoch,
then analyze per-operation / per-batch timing and export a Chrome trace.
A second section runs a skewed-cost workload under ``scheduler="static"``
and ``scheduler="adaptive"`` and diffs the two traces — the per-batch
``sched`` records (queue depth, steals, chosen prefetch depth) show the
closed-loop dispatcher rerouting the heavy batches.

Run:  python examples/quickstart.py
"""

import os
import tempfile
import time

import numpy as np

from repro import (
    Compose,
    DataLoader,
    ImageFolder,
    Normalize,
    RandomHorizontalFlip,
    RandomResizedCrop,
    ToTensor,
    analyze_trace,
    parse_trace_file,
    write_chrome_trace,
)
from repro.core.lotustrace import compare_traces
from repro.data.dataset import Dataset
from repro.datasets import SyntheticImageNet
from repro.utils.timeunits import format_ns


class SkewedCostDataset(Dataset):
    """Heavy-tailed per-sample cost: every 4th batch of 4 costs ~10x,
    the shape a corpus of mostly-small-plus-occasionally-huge JPEGs
    produces. Values are a pure function of the index, so any scheduler
    mode yields identical bytes (the DESIGN.md §12 parity-oracle rule)."""

    def __len__(self):
        return 64

    def __getitem__(self, index):
        heavy = (index // 4) % 4 == 0
        time.sleep(0.01 if heavy else 0.001)
        rng = np.random.default_rng(1000 + index)
        return rng.standard_normal(16).astype(np.float32)


def skewed_scheduler_demo(workdir: str) -> None:
    """Run the same skewed workload under static and adaptive dispatch
    and diff the traces: the ``sched[...]`` lines surface the per-batch
    scheduler records either side emitted."""
    logs = {}
    for scheduler in ("static", "adaptive"):
        logs[scheduler] = os.path.join(workdir, f"sched-{scheduler}.log")
        loader = DataLoader(
            SkewedCostDataset(),
            batch_size=4,
            num_workers=4,
            prefetch_factor=2,
            worker_backend="thread",
            scheduler=scheduler,
            seed=11,
            log_file=logs[scheduler],
        )
        start = time.perf_counter()
        for _batch in loader:
            pass
        print(f"  scheduler={scheduler!r:<11} epoch took "
              f"{time.perf_counter() - start:.2f}s")

    comparison = compare_traces(
        parse_trace_file(logs["static"]),
        parse_trace_file(logs["adaptive"]),
    )
    print("\ntrace diff (baseline=static -> candidate=adaptive):")
    for line in comparison.format().splitlines():
        if line.startswith(("sched[", "median wait")):
            print(f"  {line}")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="lotus-quickstart-")
    train_dir = os.path.join(workdir, "train")
    custom_log_file = os.path.join(workdir, "lotustrace.log")

    # A tiny synthetic stand-in for ImageNet, laid out as an ImageFolder.
    print("generating synthetic dataset ...")
    SyntheticImageNet(48, n_classes=4, seed=0).write_image_folder(train_dir)

    # Listing 1, almost verbatim: the pipeline and loader take the same
    # log_file used by the paper's instrumented torchvision build.
    train_dataset = ImageFolder(
        train_dir,
        Compose(
            [
                RandomResizedCrop(64),
                RandomHorizontalFlip(),
                ToTensor(),
                Normalize(mean=[0.485, 0.456, 0.406], std=[0.229, 0.224, 0.225]),
            ],
            log_transform_elapsed_time=custom_log_file,
        ),
        log_file=custom_log_file,
    )
    train_loader = DataLoader(
        train_dataset,
        batch_size=8,
        shuffle=True,
        num_workers=2,
        pin_memory=True,
        log_file=custom_log_file,
    )

    print("running one epoch ...")
    for batch, labels in train_loader:
        pass  # a real job would train a model here

    analysis = analyze_trace(parse_trace_file(custom_log_file))
    print(f"\nPer-operation elapsed time over {len(analysis.batches)} batches:")
    for op in analysis.op_names():
        summary = analysis.op_summary(op)
        print(
            f"  {op:<22} avg={format_ns(summary.mean):>10} "
            f"p90={format_ns(summary.p90):>10} n={summary.count}"
        )

    waits = analysis.wait_times_ns()
    delays = analysis.delay_times_ns()
    print(f"\nmain-process wait  (median): {format_ns(sorted(waits)[len(waits) // 2])}")
    print(f"batch delay        (median): {format_ns(sorted(delays)[len(delays) // 2])}")

    viz = os.path.join(workdir, "viz_file.lotustrace")
    write_chrome_trace(parse_trace_file(custom_log_file), viz, coarse=True)
    print(f"\nChrome trace written to {viz}")
    print("open chrome://tracing and load it to see the data flow")

    # -- DESIGN.md §12: closed-loop scheduling on a skewed workload ----------
    print("\nskewed-cost workload, static vs adaptive dispatch ...")
    skewed_scheduler_demo(workdir)


if __name__ == "__main__":
    main()
