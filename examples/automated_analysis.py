"""Automated trace diagnosis + terminal visualization.

Implements the paper's stated future work ("automated log analysis"):
run an instrumented pipeline, then let the analyzer produce the § V-style
takeaways — bottleneck regime, hot operation, out-of-order impact, worker
balance — and render the data flow as an ASCII timeline (the terminal
twin of the Chrome trace in Figure 2).

Run:  python examples/automated_analysis.py
"""

from repro.core.lotustrace import InMemoryTraceLog, generate_report
from repro.viz import render_batch_flows, render_timeline
from repro.workloads import SMOKE, build_ic_pipeline, build_is_pipeline


def analyze(title: str, bundle, sink: InMemoryTraceLog) -> None:
    bundle.run_epoch()
    records = sink.records()
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
    print(render_timeline(records, width=64))
    print()
    print(render_batch_flows(records, limit=8))
    print("\nautomated findings:")
    print(generate_report(records).format())


def main() -> None:
    sink = InMemoryTraceLog()
    analyze(
        "Image classification (preprocessing-bound)",
        build_ic_pipeline(profile=SMOKE, num_workers=2, log_file=sink, seed=0),
        sink,
    )
    sink = InMemoryTraceLog()
    analyze(
        "Image segmentation (GPU-bound)",
        build_is_pipeline(profile=SMOKE, num_workers=2, log_file=sink, seed=0),
        sink,
    )


if __name__ == "__main__":
    main()
