"""Characterize the three MLPerf-style pipelines (paper § V).

Runs IC / IS / OD with LotusTrace enabled and a virtual-GPU trainer,
reproducing the paper's bottleneck analysis: which pipeline is
preprocessing-bound vs GPU-bound, how variable per-batch preprocessing
time is, and where out-of-order arrivals cost time.

Run:  python examples/characterize_pipelines.py
"""

from repro.core.lotustrace import InMemoryTraceLog, out_of_order_events
from repro.experiments.common import run_traced_epoch
from repro.utils.timeunits import format_ns
from repro.workloads import (
    SMOKE,
    build_ic_pipeline,
    build_is_pipeline,
    build_od_pipeline,
)


def characterize(name: str, bundle) -> None:
    analysis = run_traced_epoch(bundle)
    report = analysis.epoch_report
    summary = analysis.preprocess_summary()
    waits = sorted(analysis.wait_times_ns())
    delays = sorted(analysis.delay_times_ns())
    median_wait = waits[len(waits) // 2]
    median_delay = delays[len(delays) // 2]
    gpu_step_ns = report.mean_gpu_step_s * 1e9

    regime = (
        "PREPROCESSING-bound (GPU stalls waiting for batches)"
        if median_wait > gpu_step_ns
        else "GPU-bound (batches queue behind the accelerator)"
    )
    print(f"\n=== {name} ===")
    print(f"  batches: {report.n_batches}, epoch: {report.epoch_time_s:.2f}s")
    print(
        f"  per-batch preprocessing: avg={format_ns(summary.mean)} "
        f"p90={format_ns(summary.p90)} (std {summary.std_pct_of_mean:.0f}% of mean)"
    )
    print(f"  GPU step: {format_ns(gpu_step_ns)}")
    print(f"  median wait: {format_ns(median_wait)}, median delay: {format_ns(median_delay)}")
    print(f"  bottleneck: {regime}")
    ooo = out_of_order_events(analysis)
    if ooo:
        worst = max(ooo, key=lambda event: event.delay_ns)
        print(
            f"  out-of-order arrivals: {len(ooo)} "
            f"(worst delayed batch waited {format_ns(worst.delay_ns)} after ready)"
        )


def main() -> None:
    profile = SMOKE.scaled(ic_images=48)
    characterize(
        "Image Classification (ResNet18-class)",
        build_ic_pipeline(
            profile=profile, num_workers=2, n_gpus=1, log_file=InMemoryTraceLog()
        ),
    )
    characterize(
        "Image Segmentation (U-Net3D-class)",
        build_is_pipeline(
            profile=profile, num_workers=2, n_gpus=1, log_file=InMemoryTraceLog()
        ),
    )
    characterize(
        "Object Detection (Mask-R-CNN-class)",
        build_od_pipeline(
            profile=profile, num_workers=2, n_gpus=1, log_file=InMemoryTraceLog()
        ),
    )


if __name__ == "__main__":
    main()
