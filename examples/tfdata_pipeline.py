"""LotusTrace on a tf.data-style pipeline (framework generality).

The paper's instrumentation methodology targets any declaratively
specified preprocessing framework. This example declares the IC
preprocessing chain with the tf.data-like API — map/shuffle/batch/
prefetch — instruments it with one call, and runs the same per-op and
wait analysis used for the DataLoader pipelines.

Run:  python examples/tfdata_pipeline.py
"""

from repro.core.lotustrace import InMemoryTraceLog, analyze_trace
from repro.datasets import SyntheticImageNet
from repro.imaging import Image
from repro.tfdata import from_source
from repro.transforms import Normalize, RandomResizedCrop, ToTensor
from repro.utils.timeunits import format_ns


def main() -> None:
    blobs = SyntheticImageNet(48, seed=0).blobs
    log = InMemoryTraceLog()

    pipeline = (
        from_source(blobs)
        .map(lambda blob: Image.open(blob).convert("RGB"), name="Loader")
        .map(RandomResizedCrop(64, seed=1))
        .map(ToTensor())
        .map(Normalize([0.485, 0.456, 0.406], [0.229, 0.224, 0.225]))
        .shuffle(16, seed=2)
        .batch(8)
        .prefetch(2)
        .instrument(log)
    )
    print(pipeline)

    n_batches = sum(1 for _ in pipeline)
    analysis = analyze_trace(log.records())
    print(f"\nran {n_batches} batches; per-op elapsed time:")
    for op in analysis.op_names():
        summary = analysis.op_summary(op)
        print(
            f"  {op:<22} avg={format_ns(summary.mean):>10} "
            f"p90={format_ns(summary.p90):>10} n={summary.count}"
        )
    waits = analysis.wait_times_ns()
    print(
        f"\nconsumer wait (prefetch queue): median "
        f"{format_ns(sorted(waits)[len(waits) // 2])} over {len(waits)} batches"
    )


if __name__ == "__main__":
    main()
