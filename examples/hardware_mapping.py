"""LotusMap end to end: map Python operations to C/C++ functions, then
attribute hardware counters per operation (paper § IV, Figure 6 e-h).

Three steps, exactly the paper's workflow:

1. *Mapping* (one-time, per machine): run each Python operation in
   isolation under the hardware profiler with ITT gating, repeat runs,
   filter, and persist ``mapping_funcs.json``.
2. *Job run*: run the instrumented pipeline with LotusTrace active and the
   profiler attached to the whole job.
3. *Attribution*: filter the whole-job profile to preprocessing functions
   and split each C function's counters across Python operations using
   LotusTrace elapsed-time weights.

Run:  python examples/hardware_mapping.py
"""

import os
import tempfile

from repro.core.lotusmap import Mapping, attribute_counters
from repro.core.lotustrace import InMemoryTraceLog
from repro.experiments.common import (
    build_ic_mapping,
    run_traced_epoch,
    scaled_uprof,
    scaled_vtune,
)
from repro.workloads import SMOKE, build_ic_pipeline


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="lotus-mapping-")

    # --- Step 1: the one-time mapping (Intel and AMD flavours) -------------
    print("building Python -> C/C++ mapping (Intel-flavoured profiler) ...")
    intel = build_ic_mapping(lambda: scaled_vtune(seed=0), runs=10, seed=0)
    print("building Python -> C/C++ mapping (AMD-flavoured profiler) ...")
    amd = build_ic_mapping(lambda: scaled_uprof(seed=1), runs=10, seed=0)

    mapping_path = os.path.join(workdir, "mapping_funcs.json")
    intel.save(mapping_path)
    print(f"mapping saved to {mapping_path}\n")

    for op in ("Loader", "RandomResizedCrop"):
        common = intel.function_names_for(op) & amd.function_names_for(op)
        print(f"{op}:")
        for fn in sorted(common):
            print(f"  {fn}")
        for fn in sorted(intel.vendor_specific_vs(amd, op)):
            print(f"  {fn}  *Intel-specific")
        for fn in sorted(amd.vendor_specific_vs(intel, op)):
            print(f"  {fn}  *AMD-specific")

    # --- Step 2: profile the actual job -----------------------------------
    print("\nrunning the IC pipeline under the profiler ...")
    log = InMemoryTraceLog()
    bundle = build_ic_pipeline(profile=SMOKE, num_workers=2, log_file=log, seed=3)
    profiler = scaled_vtune(seed=3)
    profiler.start()
    try:
        analysis = run_traced_epoch(bundle)
    finally:
        profile = profiler.stop()

    print(f"whole-job profile: {len(profile)} C/C++ functions")
    mapping = Mapping.load(mapping_path)
    filtered = profile.filter(
        lambda row: mapping.is_preprocessing_function(row.function)
    )
    print(f"after LotusMap filtering: {len(filtered)} preprocessing functions")

    # --- Step 3: attribute counters to Python operations -------------------
    attributed = attribute_counters(filtered, mapping, analysis.op_total_cpu_ns())
    print("\nper-operation hardware view:")
    print(f"  {'operation':<22} {'CPU ms':>8} {'uops/clk':>9} {'FE%':>6} {'DRAM%':>6}")
    for op, counters in sorted(
        attributed.items(), key=lambda kv: kv[1].cpu_time_ns, reverse=True
    ):
        print(
            f"  {op:<22} {counters.cpu_time_ns / 1e6:>8.2f} "
            f"{counters.uops_per_clocktick:>9.3f} "
            f"{counters.front_end_bound_pct:>6.1f} {counters.dram_bound_pct:>6.1f}"
        )


if __name__ == "__main__":
    main()
